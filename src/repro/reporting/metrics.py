"""Gauge and histogram tables for :mod:`repro.obs` summaries.

Companion to :mod:`repro.reporting.spans`: renders the ``gauges`` and
``histograms`` sections an observer summary carries once metrics were
recorded (liveness profiles, search statistics).  Both renderers return
the empty string when their section is absent, so callers can append
unconditionally.
"""

from __future__ import annotations

from typing import Any, Mapping


def render_gauges(summary: Mapping[str, Any]) -> str:
    """Two-column table of gauge names and their latest values.

    >>> print(render_gauges({"gauges": {"liveness.A.peak": 34}}))
    gauge                                         value
    ---------------------------------------------------
    liveness.A.peak                                  34
    """
    gauges = summary.get("gauges", {})
    if not gauges:
        return ""
    header = f"{'gauge':<40} {'value':>10}"
    lines = [header, "-" * len(header)]
    for name, value in sorted(gauges.items()):
        if isinstance(value, float) and not value.is_integer():
            rendered = f"{value:.3f}"
        else:
            rendered = f"{int(value)}" if isinstance(value, float) else f"{value}"
        lines.append(f"{name:<40} {rendered:>10}")
    return "\n".join(lines)


def render_histograms(summary: Mapping[str, Any]) -> str:
    """Count/sum/mean table, one row per recorded histogram.

    >>> print(render_histograms({"histograms": {
    ...     "liveness.A.reuse_distance": {
    ...         "buckets": [1, 2], "counts": [3, 1, 0], "count": 4, "sum": 6,
    ...     },
    ... }}))
    histogram                                count        sum       mean
    --------------------------------------------------------------------
    liveness.A.reuse_distance                    4          6      1.500
    """
    histograms = summary.get("histograms", {})
    if not histograms:
        return ""
    header = f"{'histogram':<40} {'count':>5} {'sum':>10} {'mean':>10}"
    lines = [header, "-" * len(header)]
    for name, hist in sorted(histograms.items()):
        count = int(hist["count"])
        total = hist["sum"]
        mean = total / count if count else 0.0
        total_s = f"{total:.3f}" if isinstance(total, float) and not total.is_integer() else f"{int(total)}"
        lines.append(f"{name:<40} {count:>5} {total_s:>10} {mean:>10.3f}")
    return "\n".join(lines)


def render_metrics(summary: Mapping[str, Any]) -> str:
    """Gauges table then histograms table; empty string if neither present."""
    sections = [s for s in (render_gauges(summary), render_histograms(summary)) if s]
    return "\n\n".join(sections)
