"""Gauge and histogram tables for :mod:`repro.obs` summaries.

Companion to :mod:`repro.reporting.spans`: renders the ``gauges`` and
``histograms`` sections an observer summary carries once metrics were
recorded (liveness profiles, search statistics).  Both renderers return
the empty string when their section is absent, so callers can append
unconditionally.
"""

from __future__ import annotations

from typing import Any, Mapping


def render_gauges(summary: Mapping[str, Any]) -> str:
    """Two-column table of gauge names and their latest values.

    >>> print(render_gauges({"gauges": {"liveness.A.peak": 34}}))
    gauge                                         value
    ---------------------------------------------------
    liveness.A.peak                                  34
    """
    gauges = summary.get("gauges", {})
    if not gauges:
        return ""
    header = f"{'gauge':<40} {'value':>10}"
    lines = [header, "-" * len(header)]
    for name, value in sorted(gauges.items()):
        if isinstance(value, float) and not value.is_integer():
            rendered = f"{value:.3f}"
        else:
            rendered = f"{int(value)}" if isinstance(value, float) else f"{value}"
        lines.append(f"{name:<40} {rendered:>10}")
    return "\n".join(lines)


def render_histograms(summary: Mapping[str, Any]) -> str:
    """Count/sum/mean table, one row per recorded histogram.

    >>> print(render_histograms({"histograms": {
    ...     "liveness.A.reuse_distance": {
    ...         "buckets": [1, 2], "counts": [3, 1, 0], "count": 4, "sum": 6,
    ...     },
    ... }}))
    histogram                                count        sum       mean
    --------------------------------------------------------------------
    liveness.A.reuse_distance                    4          6      1.500
    """
    histograms = summary.get("histograms", {})
    if not histograms:
        return ""
    header = f"{'histogram':<40} {'count':>5} {'sum':>10} {'mean':>10}"
    lines = [header, "-" * len(header)]
    for name, hist in sorted(histograms.items()):
        count = int(hist["count"])
        total = hist["sum"]
        mean = total / count if count else 0.0
        total_s = f"{total:.3f}" if isinstance(total, float) and not total.is_integer() else f"{int(total)}"
        lines.append(f"{name:<40} {count:>5} {total_s:>10} {mean:>10.3f}")
    return "\n".join(lines)


def render_metrics(summary: Mapping[str, Any]) -> str:
    """Gauges table then histograms table; empty string if neither present."""
    sections = [s for s in (render_gauges(summary), render_histograms(summary)) if s]
    return "\n\n".join(sections)


#: Cache families reconciled by :func:`cache_stats`: display name ->
#: counter prefix.  Every family counts ``<prefix>.hits`` /
#: ``<prefix>.misses`` (so hit rate is reportable from metrics alone)
#: and, when LRU-bounded, ``<prefix>.evictions``.
CACHE_FAMILIES: tuple[tuple[str, str], ...] = (
    ("search memo", "search.memo"),
    ("exact cache", "search.cache"),
    ("store (memory)", "store.mem"),
    ("store (disk)", "store.disk"),
)


def cache_stats(counters: Mapping[str, int]) -> list[dict[str, Any]]:
    """Hits/misses/evictions/hit-rate per cache family, from counters.

    The store's two hit tiers share one miss counter (``store.misses``
    counts lookups neither tier answered), so the memory row's misses
    are ``disk hits + store misses`` — everything the memory front
    didn't answer — and the disk row's are ``store.misses`` alone; each
    row's ``hits + misses`` then equals the lookups that reached it.
    Families with no traffic are omitted.
    """
    rows = []
    for label, prefix in CACHE_FAMILIES:
        hits = int(counters.get(f"{prefix}.hits", 0))
        if prefix == "store.mem":
            misses = int(counters.get("store.disk.hits", 0)) + int(
                counters.get("store.misses", 0)
            )
        elif prefix == "store.disk":
            misses = int(counters.get("store.misses", 0))
        else:
            misses = int(counters.get(f"{prefix}.misses", 0))
        evictions = int(counters.get(f"{prefix}.evictions", 0))
        lookups = hits + misses
        if lookups == 0 and evictions == 0:
            continue
        rows.append({
            "name": label,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": hits / lookups if lookups else 0.0,
        })
    corrupt = int(counters.get("store.corrupt", 0))
    if corrupt:
        rows.append({
            "name": "store (corrupt records)",
            "hits": 0, "misses": corrupt, "evictions": 0, "hit_rate": 0.0,
        })
    return rows


def render_cache_stats(summary: Mapping[str, Any]) -> str:
    """Hit/miss/eviction table per cache family; empty when no traffic.

    >>> print(render_cache_stats({"counters": {
    ...     "search.memo.hits": 3, "search.memo.misses": 1,
    ... }}))
    cache                      hits     misses  evictions  hit rate
    ---------------------------------------------------------------
    search memo                   3          1          0     75.0%
    """
    rows = cache_stats(summary.get("counters", {}))
    if not rows:
        return ""
    header = (
        f"{'cache':<24} {'hits':>6} {'misses':>10} {'evictions':>10} "
        f"{'hit rate':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['name']:<24} {row['hits']:>6} {row['misses']:>10} "
            f"{row['evictions']:>10} {100 * row['hit_rate']:>8.1f}%"
        )
    return "\n".join(lines)
