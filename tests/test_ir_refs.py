"""Tests for ArrayDecl, ArrayRef, Statement and Program."""

import pytest

from repro.ir import ArrayDecl, ArrayRef, NestBuilder, Statement
from repro.ir.reference import AccessKind
from repro.linalg import IntMatrix


class TestArrayDecl:
    def test_basic(self):
        decl = ArrayDecl.of("A", 10, 20)
        assert decl.rank == 2
        assert decl.declared_size == 200
        assert decl.origins == (0, 0)

    def test_origins(self):
        decl = ArrayDecl.of("A", 5, origins=[-2])
        assert decl.in_bounds((-2,))
        assert decl.in_bounds((2,))
        assert not decl.in_bounds((3,))

    def test_rejects_bad_name(self):
        with pytest.raises(ValueError):
            ArrayDecl.of("3A", 4)

    def test_rejects_zero_extent(self):
        with pytest.raises(ValueError):
            ArrayDecl.of("A", 0)

    def test_rejects_no_dims(self):
        with pytest.raises(ValueError):
            ArrayDecl("A", ())

    def test_rejects_rank_mismatch(self):
        with pytest.raises(ValueError):
            ArrayDecl("A", (3, 4), (0,))

    def test_in_bounds_rank_check(self):
        assert not ArrayDecl.of("A", 4).in_bounds((1, 1))

    def test_str(self):
        assert "A" in str(ArrayDecl.of("A", 4, origins=[1]))


class TestArrayRef:
    def test_element(self):
        ref = ArrayRef.of("A", [[1, 0], [0, 1]], [-1, 2])
        assert ref.element((5, 7)) == (4, 9)

    def test_rank_and_depth(self):
        ref = ArrayRef.of("A", [[2, 5]], [1])
        assert ref.rank == 1
        assert ref.nest_depth == 2

    def test_offset_length_check(self):
        with pytest.raises(ValueError):
            ArrayRef.of("A", [[1, 0]], [1, 2])

    def test_uniformly_generated(self):
        a = ArrayRef.of("A", [[1, 0], [0, 1]], [0, 0])
        b = ArrayRef.of("A", [[1, 0], [0, 1]], [-1, 2])
        c = ArrayRef.of("A", [[1, 1], [0, 1]], [0, 0])
        d = ArrayRef.of("B", [[1, 0], [0, 1]], [0, 0])
        assert a.uniformly_generated_with(b)
        assert not a.uniformly_generated_with(c)
        assert not a.uniformly_generated_with(d)

    def test_reuse_directions(self):
        assert ArrayRef.of("A", [[2, 5]], [1]).reuse_directions() == [(5, -2)]
        assert ArrayRef.of("A", [[1, 0], [0, 1]], [0, 0]).reuse_directions() == []

    def test_with_kind(self):
        ref = ArrayRef.of("A", [[1]], [0])
        assert ref.with_kind(AccessKind.WRITE).is_write

    def test_subscript_strings(self):
        ref = ArrayRef.of("A", [[2, -1], [0, 3]], [5, -2])
        subs = ref.subscript_strings(["i", "j"])
        assert subs == ["2*i - j + 5", "3*j - 2"]

    def test_subscript_constant_only(self):
        ref = ArrayRef.of("A", [[0, 0]], [7])
        assert ref.subscript_strings(["i", "j"]) == ["7"]

    def test_subscript_zero(self):
        ref = ArrayRef.of("A", [[0, 0]], [0])
        assert ref.subscript_strings(["i", "j"]) == ["0"]


class TestStatement:
    def test_assign(self):
        stmt = Statement.assign(
            "S1",
            ArrayRef.of("A", [[1]], [0]),
            [ArrayRef.of("B", [[1]], [0])],
        )
        assert stmt.writes[0].is_write
        assert not stmt.reads[0].is_write
        assert stmt.arrays == {"A", "B"}

    def test_pure_use(self):
        stmt = Statement.assign("S1", None, [ArrayRef.of("B", [[1]], [0])])
        assert stmt.writes == ()

    def test_references_order(self):
        stmt = Statement.assign(
            "S1",
            ArrayRef.of("A", [[1]], [0]),
            [ArrayRef.of("B", [[1]], [0])],
        )
        # Reads execute before writes.
        assert stmt.references[0].array == "B"
        assert stmt.references[-1].array == "A"

    def test_kind_validation(self):
        write_ref = ArrayRef.of("A", [[1]], [0], AccessKind.WRITE)
        with pytest.raises(ValueError):
            Statement("S1", writes=(), reads=(write_ref,))


class TestProgram:
    def build(self):
        return (
            NestBuilder("p")
            .loop("i", 1, 10)
            .loop("j", 1, 10)
            .statement(
                "S1",
                write=("A", [[1, 0], [0, 1]], [0, 0]),
                reads=[("A", [[1, 0], [0, 1]], [-1, 2]), ("B", [[2, 3]], [0])],
            )
            .build()
        )

    def test_arrays(self):
        assert self.build().arrays == ("A", "B")

    def test_refs_to(self):
        assert len(self.build().refs_to("A")) == 2

    def test_uniformity(self):
        prog = self.build()
        assert prog.is_uniformly_generated("A")
        assert prog.is_uniformly_generated("B")

    def test_inferred_decl(self):
        prog = self.build()
        decl = prog.decl("A")
        # i in 1..10, i-1 in 0..9 -> rows 0..10; j in 1..10, j+2 in 3..12.
        assert decl.origins == (0, 1)
        assert decl.extents == (11, 12)

    def test_inferred_decl_negative_coeff(self):
        prog = (
            NestBuilder()
            .loop("i", 1, 10)
            .use("S1", ("A", [[-1]], [0]))
            .build()
        )
        decl = prog.decl("A")
        assert decl.origins == (-10,)
        assert decl.extents == (10,)

    def test_default_memory(self):
        prog = self.build()
        assert prog.default_memory == sum(d.declared_size for d in prog.decls)

    def test_explicit_decl_wins(self):
        prog = (
            NestBuilder()
            .loop("i", 1, 4)
            .declare("A", 100)
            .use("S1", ("A", [[1]], [0]))
            .build()
        )
        assert prog.decl("A").declared_size == 100

    def test_depth_mismatch_rejected(self):
        with pytest.raises(ValueError):
            (
                NestBuilder()
                .loop("i", 1, 4)
                .use("S1", ("A", [[1, 0]], [0]))
                .build()
            )

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            (
                NestBuilder()
                .loop("i", 1, 4)
                .use("S1", ("A", [[1]], [0]))
                .use("S2", ("A", [[1], [0]], [0, 0]))
                .build()
            )

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            (
                NestBuilder()
                .loop("i", 1, 4)
                .use("S1", ("A", [[1]], [0]))
                .use("S1", ("A", [[1]], [1]))
                .build()
            )

    def test_needs_statement(self):
        with pytest.raises(ValueError):
            NestBuilder().loop("i", 1, 4).build()

    def test_access_events_count(self):
        prog = self.build()
        events = list(prog.access_events())
        assert len(events) == 100 * 3
        events_a = list(prog.access_events("A"))
        assert len(events_a) == 200

    def test_access_events_ordering(self):
        prog = self.build()
        events = list(prog.access_events())
        times = [(e.time, e.ordinal) for e in events]
        assert times == sorted(times)

    def test_unknown_array(self):
        with pytest.raises(KeyError):
            self.build().decl("Z")

    def test_builder_auto_labels(self):
        prog = (
            NestBuilder()
            .loop("i", 1, 2)
            .use(None, ("A", [[1]], [0]))
            .use(None, ("A", [[1]], [1]))
            .build()
        )
        assert [s.label for s in prog.statements] == ["S1", "S2"]
