"""Regenerate the seeded regression corpus (idempotent).

Run from the repo root::

    PYTHONPATH=src python tests/corpus/regenerate.py

Each entry is a *fixed* bug or a hand-minimized conformance pin: the
corpus replay test asserts every file passes its oracle, so
reintroducing one of these bugs turns the replay red with the smallest
known witness.  New entries normally arrive via ``repro check --corpus
tests/corpus`` on a failing run; this script only rebuilds the curated
seeds (stale files for the same oracle+program hash are overwritten in
place, renamed sources produce new files).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.check.runner import replay_file, write_repro  # noqa: E402
from repro.ir import parse_program  # noqa: E402

CORPUS = Path(__file__).resolve().parent

SEEDS = [
    dict(
        oracle="estimate-brackets-exact",
        seed=0,
        source=(
            "for i1 = 1 to 2 { for i2 = 1 to 2 { A0[i1][i2] = A0[i1][i2] } }"
        ),
        detail=(
            "PR-3 d==n offset-dedup bug: duplicate-offset references "
            "inflated r in r*total - reuse while contributing no reuse "
            "distance, so the formula claimed A_d = 8 'exactly' where "
            "enumeration counts 4.  Fixed by collapsing duplicate offsets "
            "before counting r (estimation/distinct.py)."
        ),
        note="minimized witness of the PR-3 exactness bug",
    ),
    dict(
        oracle="permutation-preserves-semantics",
        seed=182141,
        source="for i1 = 1 to 2 { for i2 = 1 to 2 { A0[2*i1] = A0[2*i1 + 2] } }",
        detail=(
            "PR-4 legality bug: for a singular access row [2, 0] the "
            "anti-dependence family is (1, t); the canonical "
            "representative pinned t to 0 and the endpoint walk only went "
            "in the +t direction, so the in-bounds member (1, -1) was "
            "never emitted and loop interchange was declared legal while "
            "changing execution results.  Fixed by emitting both extreme "
            "in-bounds family members (dependence/analysis.py)."
        ),
        note="shrunk by repro check from fuzz seed 182141",
    ),
    dict(
        oracle="nonuniform-bounds-bracket",
        seed=0,
        source="for i1 = 1 to 6 { for i2 = 1 to 4 { A0[2*i1] = A0[i1 + i2] } }",
        detail=(
            "Section 3.2 interval-bound pin: non-uniform 1-D references "
            "(stride-2 write vs. skewed read) where the true union count "
            "must stay below UB_max - LB_min + 1."
        ),
        note="conformance pin for the non-uniform bounds path",
    ),
    dict(
        oracle="engines-agree-2d",
        seed=0,
        source=(
            "for i1 = 1 to 6 { for i2 = 1 to 6 { "
            "A0[i1 + i2] = A0[i1 + i2 + 1] + A0[i1 + i2 + 2] } }"
        ),
        detail=(
            "Cross-engine pin: the diagonal stencil whose windows the "
            "streaming engine chunks; all four engines must agree on it "
            "natively and under the seed-derived transformed order."
        ),
        note="conformance pin for the four window engines",
    ),
]


def main() -> int:
    failures = 0
    for entry in SEEDS:
        program = parse_program(entry["source"], name="repro")
        path = write_repro(
            CORPUS,
            entry["oracle"],
            program,
            entry["seed"],
            entry["detail"],
            note=entry["note"],
        )
        violation = replay_file(path)
        status = "PASS" if violation is None else f"FAIL ({violation.detail})"
        print(f"{path.name}: {status}")
        if violation is not None:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
