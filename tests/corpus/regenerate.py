"""Regenerate the seeded regression corpus (idempotent).

Run from the repo root::

    PYTHONPATH=src python tests/corpus/regenerate.py

Each entry is a *fixed* bug or a hand-minimized conformance pin: the
corpus replay test asserts every file passes its oracle, so
reintroducing one of these bugs turns the replay red with the smallest
known witness.  New entries normally arrive via ``repro check --corpus
tests/corpus`` on a failing run; this script only rebuilds the curated
seeds (stale files for the same oracle+program hash are overwritten in
place, renamed sources produce new files).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.check.runner import replay_file, write_repro  # noqa: E402
from repro.ir import parse_program  # noqa: E402

CORPUS = Path(__file__).resolve().parent

SEEDS = [
    dict(
        oracle="estimate-brackets-exact",
        seed=0,
        source=(
            "for i1 = 1 to 2 { for i2 = 1 to 2 { A0[i1][i2] = A0[i1][i2] } }"
        ),
        detail=(
            "PR-3 d==n offset-dedup bug: duplicate-offset references "
            "inflated r in r*total - reuse while contributing no reuse "
            "distance, so the formula claimed A_d = 8 'exactly' where "
            "enumeration counts 4.  Fixed by collapsing duplicate offsets "
            "before counting r (estimation/distinct.py)."
        ),
        note="minimized witness of the PR-3 exactness bug",
    ),
    dict(
        oracle="permutation-preserves-semantics",
        seed=182141,
        source="for i1 = 1 to 2 { for i2 = 1 to 2 { A0[2*i1] = A0[2*i1 + 2] } }",
        detail=(
            "PR-4 legality bug: for a singular access row [2, 0] the "
            "anti-dependence family is (1, t); the canonical "
            "representative pinned t to 0 and the endpoint walk only went "
            "in the +t direction, so the in-bounds member (1, -1) was "
            "never emitted and loop interchange was declared legal while "
            "changing execution results.  Fixed by emitting both extreme "
            "in-bounds family members (dependence/analysis.py)."
        ),
        note="shrunk by repro check from fuzz seed 182141",
    ),
    dict(
        oracle="nonuniform-bounds-bracket",
        seed=0,
        source="for i1 = 1 to 6 { for i2 = 1 to 4 { A0[2*i1] = A0[i1 + i2] } }",
        detail=(
            "Section 3.2 interval-bound pin: non-uniform 1-D references "
            "(stride-2 write vs. skewed read) where the true union count "
            "must stay below UB_max - LB_min + 1."
        ),
        note="conformance pin for the non-uniform bounds path",
    ),
    dict(
        oracle="parametric-mws-conformance",
        seed=0,
        source=(
            "for i1 = 1 to 25 { for i2 = 1 to 10 { "
            "A0[2*i1 + 5*i2] = A0[2*i1 + 5*i2] } }"
        ),
        detail=(
            "Example 8 parametric pin: eq. (2) estimates 50 at (25, 10) "
            "but the exact window is 40 = 5*N2 - 10; the derived closed "
            "form must reproduce the exact engines, not the estimate, at "
            "every sampled bound vector."
        ),
        note="conformance pin for the parametric MWS derivation",
    ),
    dict(
        oracle="parametric-mws-conformance",
        seed=1060,
        source=(
            "for i1 = 1 to 3 { for i2 = 1 to 3 { "
            "A0[-i1 - i2] = A0[-i1 - i2 + 4] } }"
        ),
        detail=(
            "Diagonal-regime bug: under the seed-derived skewing order "
            "T=((1,-1),(-1,0)) the exact MWS switches regime along "
            "N1 == N2; the asymmetric derivation box (6,12)+spread sat "
            "entirely on one side of that diagonal, so the degree-1 fit "
            "2*N1 + 2 passed held-out verification yet overcounted by "
            "one from (12,12) on.  Fixed by also verifying on the "
            "square corners at max(base) (estimation/parametric.py)."
        ),
        note="shrunk by repro check from fuzz seed 1060",
    ),
    dict(
        oracle="parametric-mws-conformance",
        seed=1254,
        source=(
            "array A0[-6:5][-13:3]\n"
            "for i1 = 1 to 5 {\n"
            "  for i2 = 1 to 3 {\n"
            "    S1: A0[i1 - i2][-2*i1 + i2 + 1]\n"
            "    S2: A0[i1 - i2 - 4][-2*i1 + i2 - 4] = "
            "A0[i1 - i2 + 1][-2*i1 + i2 + 2]\n"
            "  }\n"
            "}\n"
        ),
        detail=(
            "Lex-orientation bug in the pairwise derivation base: "
            "dependence_distance keeps only the lex-positive family "
            "member, and with a nonsingular access matrix (empty "
            "kernel) the solution of one pair orientation is "
            "lex-negative and was dropped — here S1's read and S2's "
            "write solve to d = (9, 13), so the base stayed at (6, 8) "
            "and the deg-1 fit 2*N2 - 3 verified entirely below the "
            "regime entering at (10, 14), undercounting the window by "
            "the (N1 - 9)(N2 - 13) overlap.  Fixed by folding both "
            "orientations of every pair (estimation/parametric.py)."
        ),
        note="fuzz seed 1254, pinned unshrunk (already 2 statements)",
    ),
    dict(
        oracle="parametric-distinct-conformance",
        seed=1007,
        source=(
            "array A0[1:1][-5:3][0:0]\n"
            "for i1 = 1 to 1 {\n"
            "  for i2 = 1 to 1 {\n"
            "    for i3 = 1 to 1 {\n"
            "      S1: A0[i3][-2*i1 + i3 - 4][0] = 0\n"
            "      S2: A0[-i1 + 2*i3][-2*i1 + 2*i3 + 3][-2*i1 + 2*i3] = 0\n"
            "    }\n"
            "  }\n"
            "}\n"
        ),
        detail=(
            "Regime-blindness bug: the two writes have different access "
            "matrices, so their images first intersect at N3 = 9 — a "
            "regime boundary derivation_base cannot see from reuse "
            "distances (the same fuzz range also caught the uniform "
            "variant: pairwise A d = Δb solutions between references "
            "with no common sink were dropped, leaving the base at its "
            "floor).  The deg-1 fit verified entirely inside the "
            "clamped regime and overcounted beyond it.  Fixed by "
            "folding every pairwise distance into derivation_base, "
            "uncapping it in favor of a derivation_feasible decline, "
            "and refusing derivation outright for non-uniformly "
            "generated multi-reference arrays "
            "(estimation/parametric.py: derivation_supported)."
        ),
        note="shrunk by repro check from fuzz seed 1007",
    ),
    dict(
        oracle="parametric-distinct-conformance",
        seed=0,
        source=(
            "for i1 = 1 to 10 { for i2 = 1 to 10 { "
            "A0[i1][i2] = A0[i1 - 1][i2 + 2] } }"
        ),
        detail=(
            "Section 3 parametric pin: A_d = N1*N2 + 2*N1 + N2 - 2 for "
            "the (1, -2) kernel-reuse stencil; the derived form must "
            "match enumeration at every sampled bound vector, including "
            "the per-axis corners where the reuse clamps."
        ),
        note="conformance pin for the parametric distinct-access derivation",
    ),
    dict(
        oracle="hierarchy-degenerate-flat",
        seed=3,
        source=(
            "for i1 = 1 to 4 { for i2 = 1 to 4 { "
            "A0[i1 + i2] = A0[i1 + i2 + 1] } }"
        ),
        detail=(
            "Degenerate-hierarchy pin: a one-tier stack is definitionally "
            "the flat scratchpad, so its only boundary level must equal "
            "simulate_scratchpad field for field (both policies, native "
            "and seed-transformed order) and its energy must decompose as "
            "hits*E_tier + transfers*E_back."
        ),
        note="conformance pin for the stacked hierarchy simulation",
    ),
    dict(
        oracle="hierarchy-capacity-monotone",
        seed=7,
        source=(
            "for i1 = 1 to 5 { for i2 = 1 to 5 { "
            "A0[i1][i2] = A0[i1 - 1][i2 + 1] + A0[i1][i2 - 2] } }"
        ),
        detail=(
            "Stack-property pin: growing any tier of the seed-derived "
            "stack (costs fixed) may not increase any boundary's "
            "transfers nor the total energy/latency — Belady's inclusion "
            "property lifted through the cumulative-capacity simulation."
        ),
        note="conformance pin for hierarchy capacity monotonicity",
    ),
    dict(
        oracle="hierarchy-bound-admissible",
        seed=11,
        source=(
            "for i1 = 1 to 6 { for i2 = 1 to 6 { "
            "A0[2*i1 + i2] = A0[2*i1 + i2 + 3] } }"
        ),
        detail=(
            "Admissibility pin: the phase/cold-traffic lower bound may "
            "never exceed simulated transfers — whole program or one "
            "array, Belady or LRU, native or transformed order, flat "
            "buffer or a tier stack at its total capacity."
        ),
        note="conformance pin for the transfer lower bound",
    ),
    dict(
        oracle="engines-agree-2d",
        seed=0,
        source=(
            "for i1 = 1 to 6 { for i2 = 1 to 6 { "
            "A0[i1 + i2] = A0[i1 + i2 + 1] + A0[i1 + i2 + 2] } }"
        ),
        detail=(
            "Cross-engine pin: the diagonal stencil whose windows the "
            "streaming engine chunks; all four engines must agree on it "
            "natively and under the seed-derived transformed order."
        ),
        note="conformance pin for the four window engines",
    ),
]


def main() -> int:
    failures = 0
    for entry in SEEDS:
        program = parse_program(entry["source"], name="repro")
        path = write_repro(
            CORPUS,
            entry["oracle"],
            program,
            entry["seed"],
            entry["detail"],
            note=entry["note"],
        )
        violation = replay_file(path)
        status = "PASS" if violation is None else f"FAIL ({violation.detail})"
        print(f"{path.name}: {status}")
        if violation is not None:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
