"""Tests for Hermite/Smith normal forms, nullspaces, unimodular tools,
and the Frobenius/Sylvester counting primitives."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    IntMatrix,
    complete_unimodular,
    ext_gcd,
    frobenius_number,
    gcd_list,
    hermite_normal_form,
    integer_nullspace,
    is_unimodular,
    lcm,
    lcm_list,
    primitive_vector,
    random_unimodular,
    representable_values,
    smith_normal_form,
    solve_linear_diophantine,
    solve_two_var_diophantine,
    sylvester_count,
    unimodular_inverse,
)
from repro.linalg.frobenius import distinct_affine_values_in_box
from repro.linalg.gcd import ceil_div, floor_div
from repro.linalg.nullspace import nullspace_rank


def matrices(max_dim=4, lo=-7, hi=7):
    return st.tuples(st.integers(1, max_dim), st.integers(1, max_dim)).flatmap(
        lambda dims: st.lists(
            st.lists(st.integers(lo, hi), min_size=dims[1], max_size=dims[1]),
            min_size=dims[0],
            max_size=dims[0],
        ).map(IntMatrix)
    )


class TestGcd:
    def test_ext_gcd_basic(self):
        g, x, y = ext_gcd(240, 46)
        assert g == 2 and 240 * x + 46 * y == 2

    def test_ext_gcd_zero(self):
        g, x, y = ext_gcd(0, 0)
        assert g == 0 and 0 * x + 0 * y == 0

    def test_ext_gcd_negative(self):
        g, x, y = ext_gcd(-4, 6)
        assert g == 2 and -4 * x + 6 * y == 2

    @given(st.integers(-200, 200), st.integers(-200, 200))
    def test_ext_gcd_property(self, a, b):
        g, x, y = ext_gcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g

    def test_gcd_list(self):
        assert gcd_list([6, 9, 15]) == 3
        assert gcd_list([]) == 0
        assert gcd_list([0, 0]) == 0

    def test_lcm(self):
        assert lcm(4, 6) == 12
        assert lcm(0, 5) == 0
        assert lcm_list([2, 3, 4]) == 12
        assert lcm_list([]) == 1
        assert lcm_list([0, 3]) == 0

    def test_two_var(self):
        assert solve_two_var_diophantine(3, 5, 1) is not None
        assert solve_two_var_diophantine(2, 4, 3) is None
        assert solve_two_var_diophantine(0, 0, 0) == (0, 0)
        assert solve_two_var_diophantine(0, 0, 1) is None

    @given(st.integers(-20, 20), st.integers(-20, 20), st.integers(-50, 50))
    def test_two_var_property(self, a, b, c):
        sol = solve_two_var_diophantine(a, b, c)
        g = math.gcd(a, b)
        if (g == 0 and c != 0) or (g != 0 and c % g != 0):
            assert sol is None
        else:
            x, y = sol
            assert a * x + b * y == c

    @given(
        st.lists(st.integers(-10, 10), min_size=0, max_size=5),
        st.integers(-40, 40),
    )
    def test_multivar_property(self, coeffs, c):
        sol = solve_linear_diophantine(coeffs, c)
        g = gcd_list(coeffs)
        solvable = (c == 0) if g == 0 else (c % g == 0)
        if solvable:
            assert sol is not None
            assert sum(a * x for a, x in zip(coeffs, sol)) == c
        else:
            assert sol is None

    def test_floor_ceil_div(self):
        assert floor_div(7, 2) == 3
        assert floor_div(-7, 2) == -4
        assert floor_div(7, -2) == -4
        assert ceil_div(7, 2) == 4
        assert ceil_div(-7, 2) == -3
        assert ceil_div(7, -2) == -3


class TestHermite:
    def test_known(self):
        h, u = hermite_normal_form(IntMatrix([[2, 4], [3, 5]]))
        assert (u @ IntMatrix([[2, 4], [3, 5]])) == h
        assert is_unimodular(u)

    @given(matrices())
    @settings(max_examples=100, deadline=None)
    def test_hnf_properties(self, m):
        h, u = hermite_normal_form(m)
        # U is unimodular and H == U @ M.
        assert is_unimodular(u)
        assert u @ m == h
        # H is in echelon form with positive pivots and reduced columns.
        last_pivot_col = -1
        for i in range(h.n_rows):
            row = h.row(i)
            nonzero = [j for j, v in enumerate(row) if v != 0]
            if not nonzero:
                # All later rows must be zero too (echelon).
                for k in range(i + 1, h.n_rows):
                    assert all(v == 0 for v in h.row(k))
                break
            pivot_col = nonzero[0]
            assert pivot_col > last_pivot_col
            pivot = row[pivot_col]
            assert pivot > 0
            for r_above in range(i):
                assert 0 <= h[r_above, pivot_col] < pivot
            last_pivot_col = pivot_col


class TestSmith:
    def test_known(self):
        s, u, v = smith_normal_form(IntMatrix([[2, 4], [6, 8]]))
        assert u @ IntMatrix([[2, 4], [6, 8]]) @ v == s
        assert (s[0, 0], s[1, 1]) == (2, 4)

    def test_identity(self):
        s, u, v = smith_normal_form(IntMatrix.identity(3))
        assert s == IntMatrix.identity(3)

    def test_zero(self):
        s, u, v = smith_normal_form(IntMatrix.zeros(2, 3))
        assert s.is_zero()

    @given(matrices(max_dim=3, lo=-5, hi=5))
    @settings(max_examples=100, deadline=None)
    def test_snf_properties(self, m):
        s, u, v = smith_normal_form(m)
        assert is_unimodular(u)
        assert is_unimodular(v)
        assert u @ m @ v == s
        # Diagonal, non-negative, divisibility chain.
        diag = []
        for i in range(s.n_rows):
            for j in range(s.n_cols):
                if i != j:
                    assert s[i, j] == 0
                else:
                    assert s[i, j] >= 0
                    diag.append(s[i, j])
        for a, b in zip(diag, diag[1:]):
            if a != 0 and b != 0:
                assert b % a == 0
            if a == 0:
                assert b == 0


class TestNullspace:
    def test_primitive_vector(self):
        assert primitive_vector([4, -6, 2]) == (2, -3, 1)
        assert primitive_vector([0, 0]) == (0, 0)

    def test_paper_example_10(self):
        # Access matrix of A[3i + k, j + k]; reuse direction (1, 3, -3).
        basis = integer_nullspace(IntMatrix([[3, 0, 1], [0, 1, 1]]))
        assert basis == [(1, 3, -3)]

    def test_paper_example_4(self):
        # A[2i + 5j + 1]: reuse direction is (5, -2).
        basis = integer_nullspace(IntMatrix([[2, 5]]))
        assert basis == [(5, -2)]

    def test_full_rank_square(self):
        assert integer_nullspace(IntMatrix([[1, 0], [0, 1]])) == []

    def test_zero_matrix(self):
        basis = integer_nullspace(IntMatrix.zeros(2, 3))
        assert len(basis) == 3

    def test_nullspace_rank(self):
        assert nullspace_rank(IntMatrix([[2, 5]])) == 1
        assert nullspace_rank(IntMatrix.identity(3)) == 0

    @given(matrices(max_dim=4, lo=-6, hi=6))
    @settings(max_examples=100, deadline=None)
    def test_kernel_property(self, m):
        basis = integer_nullspace(m)
        assert len(basis) == m.n_cols - m.rank()
        for vec in basis:
            assert m.apply(vec) == tuple([0] * m.n_rows)
            assert gcd_list(vec) in (0, 1)


class TestUnimodular:
    def test_is_unimodular(self):
        assert is_unimodular(IntMatrix([[2, 3], [1, 2]]))
        assert not is_unimodular(IntMatrix([[2, 0], [0, 1]]))
        assert not is_unimodular(IntMatrix([[1, 2, 3]]))

    def test_inverse(self):
        m = IntMatrix([[2, 3], [1, 2]])
        assert unimodular_inverse(m) @ m == IntMatrix.identity(2)

    def test_complete_single_row(self):
        t = complete_unimodular([[2, -3]])
        assert is_unimodular(t)
        assert t.row(0) == (2, -3)

    def test_complete_two_rows_3d(self):
        t = complete_unimodular([[3, 0, 1], [0, 1, 1]])
        assert is_unimodular(t)
        assert t.row(0) == (3, 0, 1)
        assert t.row(1) == (0, 1, 1)

    def test_complete_full_rank_input(self):
        t = complete_unimodular([[0, 1], [1, 0]])
        assert is_unimodular(t)

    def test_complete_rejects_imprimitive(self):
        with pytest.raises(ValueError):
            complete_unimodular([[2, 0]])

    def test_complete_rejects_dependent(self):
        with pytest.raises(ValueError):
            complete_unimodular([[1, 2], [2, 4]])

    def test_complete_rejects_too_many_rows(self):
        with pytest.raises(ValueError):
            complete_unimodular([[1, 0], [0, 1], [1, 1]])

    @given(st.integers(-9, 9), st.integers(-9, 9))
    def test_complete_coprime_rows(self, a, b):
        if math.gcd(a, b) != 1:
            return
        t = complete_unimodular([[a, b]])
        assert is_unimodular(t)
        assert t.row(0) == (a, b)

    @given(st.integers(2, 4), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_unimodular(self, n, seed):
        m = random_unimodular(n, random.Random(seed))
        assert is_unimodular(m)


class TestFrobenius:
    def test_sylvester_paper_values(self):
        assert sylvester_count(3, 7) == 6
        assert sylvester_count(2, 5) == 2

    def test_sylvester_signs(self):
        assert sylvester_count(-3, 7) == 6
        assert sylvester_count(3, -7) == 6

    def test_sylvester_non_coprime_reduces(self):
        assert sylvester_count(6, 14) == sylvester_count(3, 7)

    def test_sylvester_rejects_zero(self):
        with pytest.raises(ValueError):
            sylvester_count(0, 5)

    def test_frobenius_known(self):
        assert frobenius_number(3, 7) == 11
        assert frobenius_number(3, 5) == 7

    def test_frobenius_rejects_non_coprime(self):
        with pytest.raises(ValueError):
            frobenius_number(4, 6)

    @given(st.integers(2, 9), st.integers(2, 9))
    @settings(max_examples=40, deadline=None)
    def test_sylvester_matches_bruteforce(self, a, b):
        if math.gcd(a, b) != 1:
            return
        limit = a * b  # all gaps lie below a*b - a - b + 1 <= a*b
        reachable = representable_values(a, b, limit)
        gaps = [v for v in range(limit + 1) if v not in reachable]
        assert len(gaps) == sylvester_count(a, b)
        if gaps:
            assert max(gaps) == frobenius_number(a, b)

    def test_distinct_affine_values_paper_example6(self):
        # f1 = 3i + 7j - 10 over 1..20 x 1..20 has 181 joint-with-f2 values;
        # on its own it attains span - 2 * sylvester(3,7) values.
        count = distinct_affine_values_in_box(3, 7, -10, 20, 20)
        span = (3 * 20 + 7 * 20 - 10) - (3 + 7 - 10) + 1
        assert count == span - 2 * sylvester_count(3, 7)
