"""Streaming chunked window engine: parity, dispatch, and budget gating.

The streaming engine (:mod:`repro.window.streaming`) must agree exactly
with the dense fast engine and the reference simulator on every program,
array, transformation and chunk size — it enumerates the same iteration
space in fixed-size blocks and reduces per-chunk first/last touches into
per-array lifetime stores.  These tests drive randomized differentials
(including adversarially tiny chunks that force many store
consolidations), the ``engine=`` dispatch on the public entry points,
and the ``REPRO_DENSE_BUDGET`` gate that flips ``auto`` to streaming.
"""

from __future__ import annotations

import pytest

from repro.ir import parse_program
from repro.ir.generate import GeneratorConfig, random_program
from repro.linalg import IntMatrix
from repro.transform.elementary import (
    bounded_unimodular_matrices,
    signed_permutations,
)
from repro.window import ENGINES, max_total_window, max_window_size, resolve_engine
from repro.window.fast import max_total_window_fast, max_window_size_fast
from repro.window.simulator import max_window_size_reference
from repro.window.streaming import (
    DEFAULT_CHUNK,
    CHUNK_ENV,
    max_total_window_streaming,
    max_window_size_streaming,
    stream_chunk,
)

EXAMPLE_8 = """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
"""

_CONFIGS = {
    2: GeneratorConfig(depth=2, min_trip=2, max_trip=6, max_coeff=3),
    3: GeneratorConfig(depth=3, min_trip=2, max_trip=4, max_coeff=2),
}


def _transformations(program):
    perms = list(signed_permutations(program.nest.depth))
    picks = [None, perms[len(perms) // 2]]
    if program.nest.depth == 2:
        picks.append(IntMatrix([[2, 1], [1, 1]]))
    return picks


class TestParity:
    @pytest.mark.parametrize("depth,seed", [
        (depth, seed) for depth in (2, 3) for seed in range(30)
    ])
    def test_streaming_matches_fast_and_reference(self, depth, seed):
        program = random_program(seed, _CONFIGS[depth])
        for t in _transformations(program):
            for array in program.arrays:
                fast = max_window_size_fast(program, array, t)
                stream = max_window_size_streaming(program, array, t, chunk=13)
                assert stream == fast, (
                    f"seed={seed} array={array} "
                    f"T={None if t is None else t.rows}: "
                    f"streaming={stream} fast={fast}\n{program}"
                )
            total_fast = max_total_window_fast(program, t)
            total_stream = max_total_window_streaming(program, t, chunk=13)
            assert total_stream == total_fast

    @pytest.mark.parametrize("chunk", [1, 7, 64, DEFAULT_CHUNK])
    def test_chunk_size_is_invisible(self, chunk):
        program = parse_program(EXAMPLE_8)
        assert max_window_size_streaming(program, "X", chunk=chunk) == 44
        assert max_total_window_streaming(program, chunk=chunk) == 44

    def test_reference_agreement_on_example8_transformed(self):
        program = parse_program(EXAMPLE_8)
        t = IntMatrix([[2, 3], [1, 1]])
        assert max_window_size_streaming(program, "X", t, chunk=17) == \
            max_window_size_reference(program, "X", t) == 21

    def test_profile_flag_accepted_and_ignored(self):
        program = parse_program(EXAMPLE_8)
        assert max_window_size_streaming(program, "X", profile=True) == 44


class TestDispatch:
    def test_engine_names_agree(self):
        program = parse_program(EXAMPLE_8)
        values = {
            engine: max_window_size(program, "X", engine=engine)
            for engine in ENGINES
        }
        assert set(values.values()) == {44}
        totals = {
            engine: max_total_window(program, engine=engine)
            for engine in ENGINES
        }
        assert set(totals.values()) == {44}

    def test_unknown_engine_raises(self):
        program = parse_program(EXAMPLE_8)
        with pytest.raises(ValueError, match="unknown window engine"):
            max_window_size(program, "X", engine="bogus")
        with pytest.raises(ValueError, match="unknown window engine"):
            resolve_engine(program, "bogus")

    def test_auto_resolves_fast_below_budget(self):
        program = parse_program(EXAMPLE_8)
        assert resolve_engine(program, "auto") == "fast"

    def test_auto_resolves_streaming_past_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE_BUDGET", "100")
        program = parse_program(EXAMPLE_8)  # 250 iterations > 100
        assert resolve_engine(program, "auto") == "streaming"
        # auto must still produce the exact answer through streaming.
        assert max_window_size(program, "X", engine="auto") == 44
        assert max_total_window(program, engine="auto") == 44

    def test_explicit_fast_past_budget_raises(self, monkeypatch):
        from repro.window.fast import clear_iteration_cache

        monkeypatch.setenv("REPRO_DENSE_BUDGET", "100")
        clear_iteration_cache()  # a cached dense matrix would skip the gate
        program = parse_program(EXAMPLE_8)
        with pytest.raises(ValueError, match="iterations"):
            max_window_size(program, "X", engine="fast")


class TestChunkConfig:
    def test_default_chunk(self, monkeypatch):
        monkeypatch.delenv(CHUNK_ENV, raising=False)
        assert stream_chunk() == DEFAULT_CHUNK

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV, "4096")
        assert stream_chunk() == 4096

    def test_invalid_chunk_rejected(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV, "0")
        with pytest.raises(ValueError):
            stream_chunk()

    def test_env_chunk_drives_engine(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV, "9")
        program = parse_program(EXAMPLE_8)
        assert max_window_size_streaming(program, "X") == 44


class TestObservability:
    def test_chunk_counters(self):
        from repro import obs

        program = parse_program(EXAMPLE_8)  # 250 iterations
        observer = obs.enable()
        try:
            max_window_size_streaming(program, "X", chunk=100)
        finally:
            obs.disable()
        counters = observer.counters
        assert counters["streaming.simulate.calls"] == 1
        assert counters["streaming.chunks"] == 3  # ceil(250 / 100)


class TestChunkLoopInternals:
    """Direct tests of the chunk loop and its per-chunk store folding.

    A 2x2 nest over ``A[i + j]`` has four iterations touching elements
    2, 3, 3, 4 at linear times 0..3 — small enough to hand-compute the
    exact per-element ``(first, last)`` keys any chunking must reduce
    to.  Element keys are box-packed against the touched bounding box
    ``[2, 4]``, so ids are ``value - 2``.
    """

    PROGRAM_SRC = (
        "for i = 1 to 2 { for j = 1 to 2 { A[i + j] = A[i + j] } }"
    )

    def _stores(self, chunk):
        from repro.window.streaming import _stream_lifetimes

        program = parse_program(self.PROGRAM_SRC)
        return _stream_lifetimes(program, ("A",), None, chunk)

    @pytest.mark.parametrize("chunk", [1, 2, 3, 4, 16])
    def test_store_contents_invariant_under_chunking(self, chunk):
        """chunk=1, a non-divisor, an exact divisor and chunk >= total
        must all fold to the same per-element lifetime keys."""
        import numpy as np

        store = self._stores(chunk)["A"]
        store._consolidate()
        assert store._ids.tolist() == [0, 1, 2]  # elements 2, 3, 4
        assert store._first.tolist() == [0, 1, 3]
        assert store._last.tolist() == [0, 2, 3]
        first, last = store.live_lifetimes()
        # Only element 3 (id 1) is touched at two distinct times.
        assert first.tolist() == [1]
        assert last.tolist() == [2]
        assert isinstance(first, np.ndarray)

    @pytest.mark.parametrize(
        "chunk,expected",
        [(1, 4), (3, 2), (2, 2), (4, 1), (16, 1)],
        ids=["unit", "non-divisor", "divisor", "exact-total", "oversized"],
    )
    def test_chunk_count_is_ceil_of_total(self, chunk, expected):
        from repro import obs

        observer = obs.enable()
        try:
            self._stores(chunk)
        finally:
            obs.disable()
        assert observer.counters["streaming.chunks"] == expected

    def test_decode_block_matches_native_iteration_order(self):
        from repro.window.streaming import _decode_block

        program = parse_program(
            "for i = 1 to 3 { for j = 2 to 4 { A[i][j] = 0 } }"
        )
        nest = program.nest
        expected = [tuple(p) for p in nest.iterate()]
        got = _decode_block(0, 9, nest.lowers, nest.trip_counts)
        assert [tuple(row) for row in got.tolist()] == expected
        # A mid-stream block is the matching slice of the full order.
        middle = _decode_block(4, 7, nest.lowers, nest.trip_counts)
        assert [tuple(row) for row in middle.tolist()] == expected[4:7]

    def test_lifetime_store_merges_across_blocks(self):
        import numpy as np

        from repro.window.streaming import _LifetimeStore

        store = _LifetimeStore(chunk=2)
        ids = lambda *v: np.array(v, dtype=np.int64)
        store.add(ids(5), ids(10), ids(10))
        store.add(ids(5, 9), ids(2, 4), ids(2, 4))
        store.add(ids(), ids(), ids())  # empty block is a no-op
        first, last = store.live_lifetimes()
        # Element 5 spans blocks: first=min(10, 2), last=max(10, 2).
        assert first.tolist() == [2]
        assert last.tolist() == [10]

    def test_empty_store_yields_empty_lifetimes(self):
        from repro.window.streaming import _LifetimeStore

        store = _LifetimeStore(chunk=4)
        first, last = store.live_lifetimes()
        assert first.size == 0 and last.size == 0

    @pytest.mark.parametrize("chunk", [1, 3, 5, 250])
    def test_env_chunk_edges_keep_answers_exact(self, monkeypatch, chunk):
        monkeypatch.setenv(CHUNK_ENV, str(chunk))
        program = parse_program(EXAMPLE_8)  # 250 iterations
        assert max_window_size_streaming(program, "X") == 44
        assert max_total_window_streaming(program) == 44
