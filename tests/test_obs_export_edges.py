"""Chrome-tracing exporter edge cases (ISSUE 7 satellite): zero-length
and negative-duration spans, non-monotonic clocks across pool workers,
and numpy scalar attributes surviving serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.export import (
    _format_value,
    chrome_trace,
    prometheus_text,
    write_chrome_trace,
)


def _span(name, ts, dur, seq=0, attrs=None):
    event = {"ev": "span", "name": name, "path": name, "ts_us": ts,
             "dur_us": dur, "seq": seq}
    if attrs is not None:
        event["attrs"] = attrs
    return event


class TestDurationEdges:
    def test_zero_duration_span_is_preserved(self):
        trace = chrome_trace([_span("instant", ts=5, dur=0)])
        (entry,) = trace["traceEvents"]
        assert entry["ph"] == "X"
        assert entry["ts"] == 5
        assert entry["dur"] == 0

    def test_negative_duration_clamped_to_zero(self):
        # A clock stepping backwards mid-span must not produce a span
        # Chrome renders as ending before it started.
        trace = chrome_trace([_span("weird", ts=10, dur=-250)])
        (entry,) = trace["traceEvents"]
        assert entry["dur"] == 0
        assert entry["ts"] == 10


class TestNonMonotonicClocks:
    """Pool workers measure from their own observer epoch, so one merged
    trace can hold negative timestamps relative to the parent's."""

    def test_timeline_shifted_so_earliest_ts_is_zero(self):
        trace = chrome_trace([
            _span("parent", ts=10, dur=5),
            _span("worker", ts=-50, dur=20),
        ])
        by_name = {e["name"]: e for e in trace["traceEvents"]}
        assert by_name["worker"]["ts"] == 0
        assert by_name["parent"]["ts"] == 60
        assert min(e["ts"] for e in trace["traceEvents"]) == 0

    def test_counter_sample_lands_at_shifted_timeline_end(self):
        trace = chrome_trace([
            _span("worker", ts=-50, dur=20),
            _span("parent", ts=10, dur=5),
            {"ev": "counter", "name": "cache.hits", "value": 3, "seq": 9},
        ])
        counter = next(
            e for e in trace["traceEvents"] if e["cat"] == "counter"
        )
        # latest span end is 15, shifted by +50 with the rest of the
        # timeline -> the final counter sample sits at 65.
        assert counter["ts"] == 65
        assert counter["args"]["value"] == 3

    def test_non_negative_timelines_not_shifted(self):
        trace = chrome_trace([_span("a", ts=7, dur=1)])
        assert trace["traceEvents"][0]["ts"] == 7

    def test_legacy_events_fall_back_to_seq(self):
        event = {"ev": "span", "name": "old", "path": "old", "seq": 4}
        (entry,) = chrome_trace([event])["traceEvents"]
        assert entry["ts"] == 4
        assert entry["dur"] == 0


class TestNumpyScalarAttrs:
    def test_numpy_attrs_survive_file_round_trip(self, tmp_path):
        events = [
            _span("eval", ts=0, dur=int(np.int64(12)),
                  attrs={"candidates": np.int64(3),
                         "ratio": np.float64(0.5)}),
            {"ev": "counter", "name": "search.cache.hits",
             "value": np.int64(7), "seq": 2},
        ]
        jsonl = tmp_path / "trace.jsonl"
        # json.dumps of numpy scalars needs the exporter's default hook;
        # write the JSONL the way the observer does.
        from repro.obs.core import _json_default

        jsonl.write_text(
            "".join(json.dumps(e, default=_json_default) + "\n"
                    for e in events),
            encoding="utf-8",
        )
        out = write_chrome_trace(jsonl, tmp_path / "trace.json")
        parsed = json.loads(out.read_text(encoding="utf-8"))
        span = next(e for e in parsed["traceEvents"] if e["cat"] == "span")
        assert span["args"]["candidates"] == 3
        assert span["args"]["ratio"] == 0.5
        counter = next(
            e for e in parsed["traceEvents"] if e["cat"] == "counter"
        )
        assert counter["args"]["value"] == 7

    def test_live_numpy_attrs_serialize(self, tmp_path):
        # Straight from dicts (no JSONL hop): numpy values must still
        # not break the final json.dumps.
        trace = chrome_trace([
            _span("eval", ts=0, dur=1, attrs={"n": np.int64(2)})
        ])
        from repro.obs.core import _json_default

        parsed = json.loads(json.dumps(trace, default=_json_default))
        assert parsed["traceEvents"][0]["args"]["n"] == 2

    @pytest.mark.parametrize("value, expected", [
        (np.int64(3), "3"),
        (np.float64(2.5), "2.5"),
        (np.float64(4.0), "4"),
        (3.0, "3"),
        (2.5, "2.5"),
        (7, "7"),
    ])
    def test_format_value_unwraps_scalars(self, value, expected):
        assert _format_value(value) == expected

    def test_prometheus_text_renders_numpy_counters(self):
        text = prometheus_text(
            {"spans": {}, "counters": {"cache.hits": np.int64(3)}}
        )
        assert "repro_cache_hits_total 3" in text
        assert "np.int64" not in text


class TestEmptyTrace:
    def test_empty_event_stream(self):
        trace = chrome_trace([])
        assert trace["traceEvents"] == []
        assert trace["displayTimeUnit"] == "ms"

    def test_non_span_non_counter_events_ignored(self):
        trace = chrome_trace([
            {"ev": "meta", "seq": 0, "version": 1},
            {"ev": "summary", "seq": 9},
        ])
        assert trace["traceEvents"] == []
