"""The ``repro batch`` service: manifests, dedup, degradation, timeouts,
and warm/cold parity against the persistent store."""

from __future__ import annotations

import json
import time

import pytest

from repro import obs
from repro.obs import flight, runctx
from repro.store import (
    BatchOutcome,
    ResultStore,
    load_manifest,
    render_batch_table,
    run_batch,
)
from repro.transform.search import clear_exact_cache


@pytest.fixture
def observer():
    observer = obs.enable()
    try:
        yield observer
    finally:
        obs.disable()


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_exact_cache()
    yield
    clear_exact_cache()


def _write_manifest(tmp_path, payload):
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestManifest:
    def test_plain_list(self, tmp_path):
        path = _write_manifest(tmp_path, [{"kind": "mws", "kernel": "sor"}])
        assert load_manifest(path) == [{"kind": "mws", "kernel": "sor"}]

    def test_items_wrapper(self, tmp_path):
        path = _write_manifest(
            tmp_path, {"items": [{"kind": "optimize", "kernel": "sor"}]}
        )
        assert load_manifest(path) == [{"kind": "optimize", "kernel": "sor"}]

    def test_non_list_rejected(self, tmp_path):
        path = _write_manifest(tmp_path, {"kernels": ["sor"]})
        with pytest.raises(ValueError, match="manifest must be a JSON list"):
            load_manifest(path)

    def test_checked_in_figure2_manifest_loads(self):
        entries = load_manifest("benchmarks/manifests/figure2.json")
        assert len(entries) >= 8


class TestRunBatch:
    def test_kernel_items_evaluate(self):
        report = run_batch(
            [{"kind": "mws", "kernel": "2point"},
             {"kind": "optimize", "kernel": "2point"}]
        )
        assert report.ok
        assert [o.status for o in report.outcomes] == ["ok", "ok"]
        assert report.outcomes[0].result["mws"] is not None
        assert report.outcomes[1].result["mws_after"] is not None

    def test_file_items_evaluate(self, tmp_path):
        src = tmp_path / "nest.loop"
        src.write_text(
            "for i = 1 to 6 { for j = 1 to 6 { "
            "X[i + j] = X[i + j - 1] } }",
            encoding="utf-8",
        )
        report = run_batch([{"kind": "search", "file": str(src), "array": "X"}])
        assert report.ok
        assert report.outcomes[0].result["array"] == "X"

    def test_identical_work_is_deduped(self, observer):
        report = run_batch(
            [{"kind": "optimize", "kernel": "sor"},
             {"kind": "optimize", "kernel": "2point"},
             {"kind": "optimize", "kernel": "sor"}]
        )
        assert report.unique_items == 2
        assert report.deduped_items == 1
        alias = report.outcomes[2]
        assert alias.duplicate_of == 0
        assert alias.result == report.outcomes[0].result
        assert observer.counters["batch.items.deduped"] == 1

    def test_malformed_items_degrade_not_abort(self, observer):
        report = run_batch(
            [{"kind": "mws", "kernel": "2point"},
             {"kind": "frobnicate", "kernel": "sor"},     # unknown kind
             {"kind": "mws"},                              # no target
             {"kind": "mws", "kernel": "no_such_kernel"},  # bad kernel
             "not-an-object"]
        )
        statuses = [o.status for o in report.outcomes]
        assert statuses == ["ok", "error", "error", "error", "error"]
        assert not report.ok
        assert "unknown kind 'frobnicate'" in report.outcomes[1].error
        assert "exactly one of 'kernel' or 'file'" in report.outcomes[2].error
        assert observer.counters["batch.items.error"] == 4
        assert observer.counters["batch.items.ok"] == 1

    def test_evaluator_exception_degrades(self, observer):
        report = run_batch(
            [{"kind": "mws", "kernel": "2point"},
             {"kind": "mws", "kernel": "sor"}],
            evaluator=_explosive_evaluator,
        )
        by_target = {o.item.target: o for o in report.outcomes}
        assert by_target["sor"].status == "error"
        assert "RuntimeError: boom" in by_target["sor"].error
        assert by_target["2point"].status == "ok"

    def test_parallel_timeout_degrades(self, observer):
        report = run_batch(
            [{"kind": "mws", "kernel": "2point"},
             {"kind": "mws", "kernel": "sor"}],
            workers=2,
            timeout=0.5,
            evaluator=_sleepy_evaluator,
        )
        by_target = {o.item.target: o for o in report.outcomes}
        assert by_target["sor"].status == "timeout"
        assert "timed out after 0.5s" in by_target["sor"].error
        assert by_target["2point"].status == "ok"
        assert observer.counters["batch.item.timeout"] == 1
        # The retired legacy spelling must never be emitted again.
        assert "batch.items.timeout" not in observer.counters
        # The hung worker was killed and respawned: the slot is free.
        assert observer.counters["batch.worker.reclaimed"] == 1

    def test_hanging_items_do_not_deadlock_pool(self, observer):
        """ISSUE 10 S1 regression: with the old abandon-the-future
        timeout, ``workers`` hanging items permanently occupied every
        ProcessPoolExecutor slot and the rest of the batch deadlocked.
        The reclaimable pool kills+respawns each hung worker, so two
        hangs on a two-slot pool still let the third item complete."""
        report = run_batch(
            [{"kind": "mws", "kernel": "sor"},
             {"kind": "mws", "kernel": "3point"},
             {"kind": "mws", "kernel": "2point"}],
            workers=2,
            timeout=1.0,
            evaluator=_hang_all_but_2point_evaluator,
        )
        by_target = {o.item.target: o for o in report.outcomes}
        assert by_target["sor"].status == "timeout"
        assert by_target["3point"].status == "timeout"
        assert by_target["2point"].status == "ok"
        assert observer.counters["batch.worker.reclaimed"] == 2
        assert observer.counters["batch.item.timeout"] == 2

    def test_parallel_matches_serial(self):
        entries = [
            {"kind": "optimize", "kernel": "2point"},
            {"kind": "optimize", "kernel": "3point"},
            {"kind": "mws", "kernel": "sor"},
        ]
        serial = run_batch(entries, workers=0)
        clear_exact_cache()
        parallel = run_batch(entries, workers=2)
        assert [o.result for o in serial.outcomes] == \
            [o.result for o in parallel.outcomes]


class TestWarmColdParity:
    ENTRIES = [
        {"kind": "optimize", "kernel": "2point"},
        {"kind": "optimize", "kernel": "sor"},
        {"kind": "mws", "kernel": "sor"},
    ]

    def test_warm_rerun_is_byte_identical_and_store_served(
        self, tmp_path, observer
    ):
        cold = run_batch(self.ENTRIES, store=ResultStore(tmp_path))
        cold_writes = observer.counters["store.writes"]
        assert cold_writes > 0
        clear_exact_cache()
        warm = run_batch(self.ENTRIES, store=ResultStore(tmp_path))
        assert render_batch_table(warm) == render_batch_table(cold)
        assert observer.counters["store.disk.hits"] > 0
        # The warm run recomputed nothing, so it persisted nothing new.
        assert observer.counters["store.writes"] == cold_writes
        histograms = observer.summary()["histograms"]
        assert histograms["batch.latency.warm_s"]["count"] >= 1
        assert histograms["batch.latency.cold_s"]["count"] >= 1

    def test_storeless_run_matches_stored_run(self, tmp_path):
        with_store = run_batch(self.ENTRIES, store=ResultStore(tmp_path))
        clear_exact_cache()
        without = run_batch(self.ENTRIES)
        assert render_batch_table(with_store) == render_batch_table(without)


class TestRenderTable:
    def test_table_is_deterministic_and_marks_duplicates(self):
        report = run_batch(
            [{"kind": "mws", "kernel": "2point"},
             {"kind": "mws", "kernel": "2point"}]
        )
        table = render_batch_table(report)
        assert table == render_batch_table(report)
        assert "(= item 0)" in table
        assert "2 item(s): 1 unique, 1 deduped, 0 failed" in table
        assert "wall" not in table  # no timing: cold == warm bytes

    def test_failures_summarized(self):
        report = run_batch([{"kind": "nope", "kernel": "sor"}])
        table = render_batch_table(report)
        assert "1 failed" in table


class TestCLI:
    def test_batch_command_smoke(self, tmp_path, capsys):
        from repro.cli import main

        manifest = _write_manifest(
            tmp_path,
            [{"kind": "mws", "kernel": "2point"},
             {"kind": "mws", "kernel": "2point"}],
        )
        store_dir = tmp_path / "store"
        code = main(["--store", str(store_dir), "batch", str(manifest)])
        cold = capsys.readouterr()
        assert code == 0
        assert "(= item 0)" in cold.out
        clear_exact_cache()
        code = main(["--store", str(store_dir), "batch", str(manifest)])
        warm = capsys.readouterr()
        assert code == 0
        assert warm.out == cold.out
        assert "store (disk)" in warm.err

    def test_batch_command_fails_on_bad_item(self, tmp_path, capsys):
        from repro.cli import main

        manifest = _write_manifest(tmp_path, [{"kind": "nope", "kernel": "x"}])
        code = main(["batch", str(manifest)])
        assert code == 1
        assert "error" in capsys.readouterr().out


class TestTimeoutTelemetry:
    """ISSUE 7 satellite: a timed-out item's worker counters must not
    vanish — the parent recovers the worker's last heartbeat snapshot,
    counts the timeout, and attributes it on the run context."""

    @pytest.fixture
    def run_ctx(self, tmp_path):
        ctx = runctx.begin_run("batch", live_dir=tmp_path / "live")
        try:
            yield ctx
        finally:
            runctx.end_run()

    def test_timeout_recovers_partial_counters(
        self, observer, run_ctx, monkeypatch
    ):
        # Fast heartbeats so the doomed worker flushes at least one
        # counter snapshot before the 1s deadline (workers inherit the
        # environment at pool start).
        monkeypatch.setenv(flight.HEARTBEAT_ENV, "0.05")
        report = run_batch(
            [{"kind": "mws", "kernel": "2point"},
             {"kind": "mws", "kernel": "sor"}],
            workers=2,
            timeout=1.0,
            evaluator=_counting_sleepy_evaluator,
        )
        by_target = {o.item.target: o for o in report.outcomes}
        assert by_target["sor"].status == "timeout"
        assert by_target["2point"].status == "ok"
        # Only the canonical counter name; the legacy alias is retired.
        assert observer.counters["batch.item.timeout"] == 1
        assert "batch.items.timeout" not in observer.counters
        # The counter bumped *inside* the abandoned worker survived via
        # its heartbeat snapshot — no more silent telemetry loss.
        assert observer.counters["test.batch.partial"] == 7

        (attribution,) = run_ctx.extras["timeouts"]
        assert "sor" in attribution["item"]
        assert attribution["sig"]
        assert attribution["timeout_s"] == 1.0
        assert attribution["recovered_counters"]["test.batch.partial"] == 7

        events = flight.read_heartbeats(run_ctx.live_path)
        kinds = [e["ev"] for e in events]
        assert "item_start" in kinds
        assert "progress" in kinds
        assert "item_timeout" in kinds
        assert "batch_progress" in kinds
        assert all(e["run"] == run_ctx.run_id for e in events)
        done = [e for e in events if e["ev"] == "batch_progress"]
        assert done[-1]["done"] == done[-1]["total"] == 2

    def test_serial_run_emits_lifecycle_heartbeats(self, observer, run_ctx):
        run_batch([{"kind": "mws", "kernel": "2point"}])
        events = flight.read_heartbeats(run_ctx.live_path)
        kinds = [e["ev"] for e in events]
        assert kinds.count("item_start") == 1
        assert kinds.count("item_done") == 1
        assert kinds[-1] == "batch_progress"

    def test_serial_error_heartbeat(self, observer, run_ctx):
        run_batch(
            [{"kind": "mws", "kernel": "sor"}],
            evaluator=_explosive_evaluator,
        )
        kinds = [
            e["ev"] for e in flight.read_heartbeats(run_ctx.live_path)
        ]
        assert "item_error" in kinds

    def test_no_context_no_heartbeat_files(self, observer, tmp_path):
        # Without a run context the flight recorder is fully inert.
        run_batch([{"kind": "mws", "kernel": "2point"}])
        assert flight.live_path() is None


# Module-level so the batch machinery can pickle them to pool workers.
def _sleepy_evaluator(kind, program, array, engine, store):
    if program.name == "sor":
        time.sleep(30)
    from repro.store.batch import _default_evaluator

    return _default_evaluator(kind, program, array, engine, store)


def _explosive_evaluator(kind, program, array, engine, store):
    if program.name == "sor":
        raise RuntimeError("boom")
    from repro.store.batch import _default_evaluator

    return _default_evaluator(kind, program, array, engine, store)


def _hang_all_but_2point_evaluator(kind, program, array, engine, store):
    if program.name != "2point":
        time.sleep(30)
    from repro.store.batch import _default_evaluator

    return _default_evaluator(kind, program, array, engine, store)


def _counting_sleepy_evaluator(kind, program, array, engine, store):
    if program.name == "sor":
        # Accrue telemetry, then blow the deadline: the bumped counter
        # must come back to the parent via the heartbeat snapshot.
        obs.counter("test.batch.partial", 7)
        time.sleep(30)
    from repro.store.batch import _default_evaluator

    return _default_evaluator(kind, program, array, engine, store)
