"""Tests for window allocation, branch-and-bound and visualization."""

import math
import random

import pytest
from fractions import Fraction
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import Loop, LoopNest, parse_program
from repro.linalg import IntMatrix
from repro.transform import (
    allocate_window,
    modulo_is_valid,
    rewrite_with_buffer,
    search_mws_2d,
)
from repro.transform.branch_bound import (
    branch_and_bound_mws_2d,
    minimize_window_step,
)
from repro.transform.legality import ordering_distances
from repro.viz import (
    dependence_graph_dot,
    render_iteration_space,
    render_profile_bars,
    render_reuse_region,
    sparkline,
)
from repro.window import max_window_size, mws_2d_estimate, window_profile
from repro.window.simulator import element_lifetimes

EX8 = """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
"""


class TestWindowAllocation:
    def test_example8_original(self):
        prog = parse_program(EX8)
        alloc = allocate_window(prog, "X")
        assert alloc.modulus == 44 == alloc.mws
        assert alloc.saving_vs_declared > 0.5

    def test_example8_transformed(self):
        prog = parse_program(EX8)
        t = IntMatrix([[2, 3], [1, 1]])
        alloc = allocate_window(prog, "X", t)
        assert alloc.mws == 21
        assert 21 <= alloc.modulus <= 23  # modulo scheme may pay slack
        assert alloc.overhead < 0.15

    def test_modulus_at_least_mws(self):
        prog = parse_program(EX8)
        alloc = allocate_window(prog, "X")
        assert alloc.modulus >= alloc.mws

    def test_validity_definition(self):
        # Two elements alive together must not share a residue.
        lifetimes = [(0, 0, 5), (4, 2, 8)]  # addresses 0 and 4 overlap in time
        assert not modulo_is_valid(lifetimes, 4)  # 0 % 4 == 4 % 4
        assert modulo_is_valid(lifetimes, 3)
        assert modulo_is_valid(lifetimes, 5)

    def test_disjoint_lifetimes_can_fold(self):
        lifetimes = [(0, 0, 2), (7, 5, 9)]
        assert modulo_is_valid(lifetimes, 1)

    def test_allocation_is_conflict_free(self):
        # Replay Example 8 and verify no live collision under the modulus.
        prog = parse_program(EX8)
        alloc = allocate_window(prog, "X")
        lifetimes = element_lifetimes(prog, "X")
        live: dict[int, tuple] = {}
        events = sorted(
            (when, kind, element)
            for element, (first, last) in lifetimes.items()
            for when, kind in ((first, 0), (last, 1))
        )
        decl = prog.decl("X")
        from repro.layout import RowMajorLayout

        layout = RowMajorLayout()
        active: dict[int, set] = {}
        for element, (first, last) in lifetimes.items():
            slot = layout.address(decl, element) % alloc.modulus
            for other, (of, ol) in lifetimes.items():
                if other == element:
                    continue
                if layout.address(decl, other) % alloc.modulus != slot:
                    continue
                assert last < of or ol < first, (
                    f"{element} and {other} are live together in slot {slot}"
                )

    def test_rewrite_with_buffer(self):
        prog = parse_program(EX8)
        alloc = allocate_window(prog, "X")
        text = rewrite_with_buffer(prog, "X", alloc)
        assert f"X_buf[{alloc.modulus}]" in text.replace("array X_buf", "X_buf")
        assert f"% {alloc.modulus}]" in text
        assert "X[" not in text.replace("X_buf[", "")

    def test_unknown_array(self):
        prog = parse_program(EX8)
        with pytest.raises(KeyError):
            allocate_window(prog, "Z")

    @given(st.integers(1, 3), st.integers(-3, 3), st.integers(0, 9))
    @settings(max_examples=40, deadline=None)
    def test_modulus_bracket_property(self, a, b, c):
        if (a, b) == (0, 0):
            return
        prog = parse_program(
            f"for i = 1 to 8 {{ for j = 1 to 8 {{ "
            f"X[{a}*i + {b}*j + {c}] = X[{a}*i + {b}*j] }} }}"
        )
        alloc = allocate_window(prog, "X")
        assert alloc.mws <= alloc.modulus <= alloc.declared


class TestBranchAndBound:
    DISTS = [(3, -2), (2, 0), (5, -2)]

    def test_paper_worked_example(self):
        r = branch_and_bound_mws_2d(2, 5, 25, 10, self.DISTS)
        assert r.row == (2, 3)
        assert r.objective == Fraction(22)

    def test_example7(self):
        r = branch_and_bound_mws_2d(2, -3, 20, 30, [])
        assert r.objective == 1
        a, b = r.row
        assert 3 * a + 2 * b == 0 or abs(-3 * a - 2 * b) == 0  # aligned row

    def test_matches_enumeration(self):
        # Exhaustively check optimality within the bound.
        best = None
        for a in range(0, 9):
            for b in range(-8, 9):
                if (a, b) == (0, 0) or math.gcd(a, b) != 1:
                    continue
                if a == 0 and b < 0:
                    continue
                if any(a * d1 + b * d2 < 0 for d1, d2 in self.DISTS):
                    continue
                value = mws_2d_estimate(2, 5, 25, 10, a, b)
                if best is None or value < best:
                    best = value
        r = branch_and_bound_mws_2d(2, 5, 25, 10, self.DISTS, bound=8)
        assert r.objective == best

    def test_prunes(self):
        r_small = branch_and_bound_mws_2d(2, 5, 25, 10, self.DISTS, bound=8)
        r_large = branch_and_bound_mws_2d(2, 5, 25, 10, self.DISTS, bound=24)
        assert r_large.objective <= r_small.objective
        # Pruning: far fewer evaluations than the (2*24+1)*(24+1) grid.
        assert r_large.candidates_evaluated < 25 * 49

    def test_infeasible_raises(self):
        # b pinned to 0 by (0, +-1), a pinned to 0 by (-1, 0): no coprime
        # row satisfies all constraints.
        with pytest.raises(ValueError):
            branch_and_bound_mws_2d(
                2, 5, 10, 10, [(0, 1), (0, -1), (-1, 0)], bound=3
            )

    def test_window_step_shortcut(self):
        # The paper's "minimize 5a-2b" shortcut: feasible and good, but
        # not always optimal — (1,1) has step 3 yet MWS 30 > 22.
        row = minimize_window_step(2, 5, self.DISTS)
        assert row == (1, 1)
        assert mws_2d_estimate(2, 5, 25, 10, *row) > Fraction(22)

    @given(
        st.integers(1, 4), st.integers(-4, 4),
        st.integers(5, 20), st.integers(5, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_bb_optimal_property(self, alpha1, alpha2, n1, n2):
        if alpha2 == 0:
            return
        dists = [(1, 0)]
        bb = branch_and_bound_mws_2d(alpha1, alpha2, n1, n2, dists, bound=5)
        for a in range(0, 6):
            for b in range(-5, 6):
                if (a, b) == (0, 0) or math.gcd(a, b) != 1:
                    continue
                if a == 0 and b < 0:
                    continue
                if a * 1 + b * 0 < 0:
                    continue
                assert bb.objective <= mws_2d_estimate(alpha1, alpha2, n1, n2, a, b)


class TestViz:
    def test_iteration_space_marks(self):
        nest = LoopNest([Loop("i", 1, 4), Loop("j", 1, 6)])
        art = render_iteration_space(nest, [(2, 3)])
        assert art.count("*") == 1

    def test_reuse_region_figure1(self):
        # 10x10 with dependence (3, 2): 56 shaded cells, the paper's area.
        nest = LoopNest([Loop("i", 1, 10), Loop("j", 1, 10)])
        art = render_reuse_region(nest, (3, 2))
        assert art.count("#") == 56
        assert "56" in art

    def test_reuse_region_negative_component(self):
        nest = LoopNest([Loop("i", 1, 10), Loop("j", 1, 10)])
        assert render_reuse_region(nest, (3, -2)).count("#") == 56

    def test_clipping(self):
        nest = LoopNest([Loop("i", 1, 100), Loop("j", 1, 100)])
        assert "clipped" in render_iteration_space(nest)

    def test_wrong_depth(self):
        nest = LoopNest([Loop("i", 1, 4)])
        with pytest.raises(ValueError):
            render_iteration_space(nest)

    def test_sparkline(self):
        assert sparkline([0, 1, 2, 3], width=4) == " -*@"
        assert sparkline([]) == ""
        assert sparkline([0, 0, 0]) == "   "

    def test_sparkline_resample_keeps_peak(self):
        values = [0] * 100 + [10] + [0] * 100
        line = sparkline(values, width=20)
        assert "@" in line

    def test_profile_bars(self):
        prog = parse_program(EX8)
        profile = window_profile(prog, "X")
        art = render_profile_bars(profile.sizes, title="X window")
        assert "X window" in art
        assert str(profile.max_size) in art

    def test_dependence_dot(self):
        prog = parse_program(EX8)
        dot = dependence_graph_dot(prog)
        assert dot.startswith("digraph")
        assert "style=dashed" in dot or "style=solid" in dot
        assert "X" in dot
