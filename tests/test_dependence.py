"""Tests for dependence/reuse analysis against paper examples and oracles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependence import (
    Dependence,
    DependenceKind,
    array_distance_vectors,
    dependence_distance,
    dependence_graph,
    gcd_test,
    is_lex_positive,
    lex_level,
    lex_negate_to_positive,
    program_dependences,
    reuse_level,
    reuse_vector,
    reuse_vectors,
    self_reuse_distance,
)
from repro.dependence.analysis import iteration_pairs_sharing_element
from repro.dependence.distance import is_lex_nonnegative, lex_compare
from repro.dependence.graph import max_in_degree_sink
from repro.ir import ArrayRef, NestBuilder, parse_program


class TestLexOrder:
    def test_positive(self):
        assert is_lex_positive((0, 3, -1))
        assert not is_lex_positive((0, -1, 5))
        assert not is_lex_positive((0, 0, 0))

    def test_nonnegative(self):
        assert is_lex_nonnegative((0, 0))
        assert is_lex_nonnegative((0, 2))
        assert not is_lex_nonnegative((-1, 2))

    def test_level(self):
        assert lex_level((0, 3, -1)) == 2
        assert lex_level((1, 0)) == 1
        assert lex_level((0, 0)) is None

    def test_negate_to_positive(self):
        assert lex_negate_to_positive((-1, 2)) == (1, -2)
        assert lex_negate_to_positive((0, 5)) == (0, 5)
        assert lex_negate_to_positive((0, 0)) == (0, 0)

    def test_compare(self):
        assert lex_compare((1, 2), (1, 3)) == -1
        assert lex_compare((2, 0), (1, 9)) == 1
        assert lex_compare((1, 2), (1, 2)) == 0
        with pytest.raises(ValueError):
            lex_compare((1,), (1, 2))

    @given(st.lists(st.integers(-5, 5), min_size=1, max_size=4))
    def test_vector_or_negation_nonneg(self, vec):
        assert is_lex_nonnegative(lex_negate_to_positive(vec))


class TestDependenceDistance:
    def test_paper_example2(self):
        src = ArrayRef.of("A", [[1, 0], [0, 1]], [0, 0])
        dst = ArrayRef.of("A", [[1, 0], [0, 1]], [-1, 2])
        assert dependence_distance(src, dst) == (1, -2)

    def test_no_integer_solution(self):
        src = ArrayRef.of("A", [[2, 0], [0, 2]], [0, 0])
        dst = ArrayRef.of("A", [[2, 0], [0, 2]], [1, 0])
        assert dependence_distance(src, dst) is None

    def test_wrong_direction_is_none(self):
        src = ArrayRef.of("A", [[1, 0], [0, 1]], [0, 0])
        dst = ArrayRef.of("A", [[1, 0], [0, 1]], [1, 0])
        # dst touches what src touched one iteration EARLIER: the positive
        # dependence goes dst -> src instead.
        assert dependence_distance(src, dst) is None
        assert dependence_distance(dst, src) == (1, 0)

    def test_non_uniform_raises(self):
        src = ArrayRef.of("A", [[3, 7]], [0])
        dst = ArrayRef.of("A", [[4, -3]], [0])
        with pytest.raises(ValueError):
            dependence_distance(src, dst)

    def test_kernel_family_smallest(self):
        # X[2i+5j+c]: family p + t(5,-2); the smallest lex-positive member.
        src = ArrayRef.of("X", [[2, 5]], [1])
        dst = ArrayRef.of("X", [[2, 5]], [5])
        assert dependence_distance(src, dst) == (3, -2)
        assert dependence_distance(dst, src) == (2, 0)

    def test_self_reuse(self):
        assert self_reuse_distance(ArrayRef.of("A", [[2, 5]], [1])) == (5, -2)
        assert self_reuse_distance(ArrayRef.of("A", [[3, 0, 1], [0, 1, 1]], [0, 0])) == (1, 3, -3)
        assert self_reuse_distance(ArrayRef.of("A", [[1, 0], [0, 1]], [0, 0])) is None

    @given(
        st.integers(-4, 4), st.integers(-4, 4),
        st.integers(-6, 6), st.integers(-6, 6),
    )
    @settings(max_examples=120, deadline=None)
    def test_distance_is_valid_and_minimal(self, a, b, c1, c2):
        # For A[a*i + b*j + c1] vs A[a*i + b*j + c2], any returned distance
        # must solve a*d1 + b*d2 = c1 - c2 and be lex-positive.
        src = ArrayRef.of("A", [[a, b]], [c1])
        dst = ArrayRef.of("A", [[a, b]], [c2])
        d = dependence_distance(src, dst)
        if d is not None:
            assert a * d[0] + b * d[1] == c1 - c2
            assert is_lex_positive(d)


class TestProgramDependences:
    def test_example8_distances(self):
        prog = parse_program(
            """
            for i = 1 to 25 {
              for j = 1 to 10 {
                X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
              }
            }
            """
        )
        distances = sorted(array_distance_vectors(prog, "X"))
        # Minimal representatives (the paper's printed set)...
        for d in [(2, 0), (3, -2), (5, -2)]:
            assert d in distances
        # ...plus the farthest in-bounds member of each kernel family
        # (needed for sound legality checks; lex-monotone endpoints).
        # Every vector must solve 2*d1 + 5*d2 in {-4, 0, 4}, be lex
        # positive, and fit inside the loop spans.
        for d1, d2 in distances:
            assert 2 * d1 + 5 * d2 in (-4, 0, 4)
            assert is_lex_positive((d1, d2))
            assert abs(d1) <= 24 and abs(d2) <= 9

    def test_example8_kinds(self):
        prog = parse_program(
            """
            for i = 1 to 25 {
              for j = 1 to 10 {
                X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
              }
            }
            """
        )
        deps = program_dependences(prog)
        by_kind = {}
        for dep in deps:
            by_kind.setdefault(dep.kind, set()).add(dep.distance)
        assert (3, -2) in by_kind[DependenceKind.FLOW]
        assert (2, 0) in by_kind[DependenceKind.ANTI]
        assert (5, -2) in by_kind[DependenceKind.OUTPUT]

    def test_exclude_input(self):
        prog = parse_program(
            "for i = 1 to 9 { B[0] = A[i] + A[i-1] }"
        )
        with_input = array_distance_vectors(prog, "A", include_input=True)
        without = array_distance_vectors(prog, "A", include_input=False)
        assert (1,) in with_input
        assert without == []

    def test_nonuniform_raises(self):
        prog = parse_program(
            "for i = 1 to 9 { for j = 1 to 9 { A[3*i + 7*j] = A[4*i - 3*j] } }"
        )
        with pytest.raises(ValueError):
            array_distance_vectors(prog, "A")

    def test_dependence_validated_by_enumeration(self):
        # Every reported distance is realized by an actual iteration pair.
        prog = parse_program(
            """
            for i = 1 to 8 {
              for j = 1 to 8 {
                X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
              }
            }
            """
        )
        write = prog.statements[0].writes[0]
        read = prog.statements[0].reads[0]
        pairs = set(iteration_pairs_sharing_element(prog.nest, write, read))
        flow = {(tuple(a), tuple(b)) for a, b in pairs}
        realized = {
            tuple(x - y for x, y in zip(later, earlier))
            for earlier, later in flow
        }
        assert (3, -2) in realized

    def test_gcd_test(self):
        a = ArrayRef.of("A", [[2, 4]], [0])
        b = ArrayRef.of("A", [[2, 4]], [1])  # 2x + 4y = 1: impossible
        assert not gcd_test(a, b)
        c = ArrayRef.of("A", [[2, 4]], [2])
        assert gcd_test(a, c)
        other = ArrayRef.of("B", [[2, 4]], [0])
        assert not gcd_test(a, other)

    def test_gcd_test_nonuniform(self):
        a = ArrayRef.of("A", [[3, 7]], [-10])
        b = ArrayRef.of("A", [[4, -3]], [60])
        assert gcd_test(a, b)  # gcd(3,7,4,3) = 1 divides everything


class TestReuse:
    def test_reuse_vector(self):
        assert reuse_vector(ArrayRef.of("A", [[2, 5]], [1])) == (5, -2)

    def test_reuse_vectors_program(self):
        prog = parse_program(
            "for i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j+2] } }"
        )
        assert reuse_vectors(prog, "A") == [(1, -2)]

    def test_reuse_level(self):
        assert reuse_level((0, 0, 1)) == 3
        assert reuse_level((1, 3, -3)) == 1

    def test_group_reuse_example3(self):
        from repro.dependence.reuse import group_reuse_distances

        prog = parse_program(
            """
            for i = 1 to 10 {
              for j = 1 to 10 {
                Z[i][j] = A[i][j] + A[i-1][j] + A[i][j-1] + A[i-1][j-1]
              }
            }
            """
        )
        distances = group_reuse_distances(list(prog.refs_to("A")))
        assert sorted(distances) == [(0, 1), (1, 0), (1, 1)]


class TestGraph:
    def test_graph_structure(self):
        prog = parse_program(
            """
            for i = 1 to 10 {
              for j = 1 to 10 {
                S1: A[i][j] = 0
                S2: B[i][j] = A[i-1][j+2]
              }
            }
            """
        )
        graph = dependence_graph(prog)
        assert set(graph.nodes) == {"S1", "S2"}
        edges = [
            (u, v, data["distance"]) for u, v, data in graph.edges(data=True)
        ]
        assert ("S1", "S2", (1, -2)) in edges

    def test_max_in_degree_sink(self):
        prog = parse_program(
            """
            for i = 1 to 10 {
              for j = 1 to 10 {
                S1: Z[i][j] = A[i][j] + A[i-1][j] + A[i][j-1] + A[i-1][j-1]
              }
            }
            """
        )
        graph = dependence_graph(prog)
        assert max_in_degree_sink(graph, "A") == "S1"
        assert max_in_degree_sink(graph, "Z") is None
