"""Fuzzing: generator validity, parser round-trips, and the estimation
cross-checks — the latter now expressed through the oracle registry
(``estimate-brackets-exact``, ``mws-bounded-by-distinct``), so a failing
case shrinks itself and prints a replay command."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation import exact_distinct_accesses
from repro.ir import generate_source, parse_program
from repro.ir.generate import (
    GeneratorConfig,
    random_nonuniform_program,
    random_program,
    random_uniform_program,
)
from repro.window import max_window_size

from tests.conftest import assert_oracle, fuzz_seeds

seeds = st.integers(0, 100_000)


class TestGenerator:
    @given(seeds)
    @settings(max_examples=50)
    def test_programs_validate(self, seed):
        prog = random_program(seed)
        assert prog.nest.total_iterations > 0
        assert prog.references

    @given(seeds)
    @settings(max_examples=30)
    def test_uniform_mode_is_uniform(self, seed):
        prog = random_uniform_program(seed)
        for array in prog.arrays:
            assert prog.is_uniformly_generated(array)

    def test_deterministic(self):
        a = random_program(42)
        b = random_program(42)
        assert generate_source(a) == generate_source(b)

    @given(seeds)
    @settings(max_examples=20)
    def test_depth_3(self, seed):
        prog = random_program(seed, GeneratorConfig(depth=3, max_trip=5))
        assert prog.nest.depth == 3

    @given(seeds)
    @settings(max_examples=30)
    def test_nonuniform_ranks_consistent(self, seed):
        """The PR-4 satellite fix: non-uniform mode must never emit an
        array referenced with different ranks across statements."""
        for depth in (2, 3):
            prog = random_program(
                seed, GeneratorConfig(depth=depth, uniform_only=False)
            )
            ranks: dict[str, int] = {}
            for ref in prog.references:
                assert ranks.setdefault(ref.array, ref.rank) == ref.rank

    @pytest.mark.parametrize(
        "bad",
        [
            dict(depth=0),
            dict(min_trip=0),
            dict(min_trip=5, max_trip=4),
            dict(max_statements=0),
            dict(max_coeff=0),  # would loop forever hunting a nonzero row
            dict(max_offset=-1),
            dict(array_rank=0),  # would loop forever hunting a nonzero row
        ],
    )
    def test_invalid_config_rejected(self, bad):
        with pytest.raises(ValueError):
            GeneratorConfig(**bad)

    def test_rank_validation_error_names_seed(self):
        """The generation-time validator rejects rank drift with a
        seed-bearing message (exercised directly; the generator itself
        pins ranks, so drift cannot arise from valid configs)."""
        from repro.ir.generate import _validate_ranks

        prog = random_program(3, GeneratorConfig(depth=2, uniform_only=False))
        array = prog.arrays[0]
        declared = {array: prog.decl(array).rank + 1}
        with pytest.raises(ValueError, match=r"seed=3.*inconsistent|rank"):
            _validate_ranks(prog, 3, declared)

    def test_nonuniform_shorthand(self):
        prog = random_nonuniform_program(7)
        assert prog.nest.depth == 2


class TestRoundTrip:
    @given(seeds)
    @settings(max_examples=60)
    def test_parse_of_generated_source(self, seed):
        prog = random_program(seed)
        text = generate_source(prog)
        again = parse_program(text)
        assert again.nest == prog.nest
        assert len(again.statements) == len(prog.statements)
        for s1, s2 in zip(again.statements, prog.statements):
            assert [(r.array, r.access, r.offset, r.kind) for r in s1.references] == [
                (r.array, r.access, r.offset, r.kind) for r in s2.references
            ]

    @given(seeds)
    @settings(max_examples=30)
    def test_roundtrip_preserves_analysis(self, seed):
        prog = random_program(seed, GeneratorConfig(max_trip=6))
        again = parse_program(generate_source(prog))
        for array in prog.arrays:
            assert exact_distinct_accesses(prog, array) == exact_distinct_accesses(
                again, array
            )
            assert max_window_size(prog, array) == max_window_size(again, array)


class TestOracleBacked:
    """The cross-engine/estimation checks formerly written inline here."""

    @pytest.mark.parametrize("seed", fuzz_seeds(40, salt=11))
    def test_estimates_bracket_exact(self, seed, tmp_path):
        assert_oracle("estimate-brackets-exact", seed, tmp_path)

    @pytest.mark.parametrize("seed", fuzz_seeds(20, salt=12))
    def test_nonuniform_bounds_bracket(self, seed, tmp_path):
        assert_oracle("nonuniform-bounds-bracket", seed, tmp_path)

    @pytest.mark.parametrize("seed", fuzz_seeds(20, salt=13))
    def test_total_window_bounded_by_footprint(self, seed, tmp_path):
        assert_oracle("mws-bounded-by-distinct", seed, tmp_path)
