"""Fuzzing: random programs through parser round-trips and cross-engine
consistency of every analysis layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation import estimate_distinct_accesses, exact_distinct_accesses
from repro.ir import generate_source, parse_program
from repro.ir.generate import (
    GeneratorConfig,
    random_nonuniform_program,
    random_program,
    random_uniform_program,
)
from repro.window import max_total_window, max_window_size
from repro.window.simulator import max_window_size_reference


seeds = st.integers(0, 100_000)


class TestGenerator:
    @given(seeds)
    @settings(max_examples=50, deadline=None)
    def test_programs_validate(self, seed):
        prog = random_program(seed)
        assert prog.nest.total_iterations > 0
        assert prog.references

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_uniform_mode_is_uniform(self, seed):
        prog = random_uniform_program(seed)
        for array in prog.arrays:
            assert prog.is_uniformly_generated(array)

    def test_deterministic(self):
        a = random_program(42)
        b = random_program(42)
        assert generate_source(a) == generate_source(b)

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_depth_3(self, seed):
        prog = random_program(seed, GeneratorConfig(depth=3, max_trip=5))
        assert prog.nest.depth == 3


class TestRoundTrip:
    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_parse_of_generated_source(self, seed):
        prog = random_program(seed)
        text = generate_source(prog)
        again = parse_program(text)
        assert again.nest == prog.nest
        assert len(again.statements) == len(prog.statements)
        for s1, s2 in zip(again.statements, prog.statements):
            assert [(r.array, r.access, r.offset, r.kind) for r in s1.references] == [
                (r.array, r.access, r.offset, r.kind) for r in s2.references
            ]

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_preserves_analysis(self, seed):
        prog = random_program(seed, GeneratorConfig(max_trip=6))
        again = parse_program(generate_source(prog))
        for array in prog.arrays:
            assert exact_distinct_accesses(prog, array) == exact_distinct_accesses(
                again, array
            )
            assert max_window_size(prog, array) == max_window_size(again, array)


class TestCrossEngineConsistency:
    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_fast_vs_reference_on_random(self, seed):
        prog = random_program(seed, GeneratorConfig(max_trip=6))
        for array in prog.arrays:
            assert max_window_size(prog, array) == max_window_size_reference(
                prog, array
            )

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_estimates_bracket_oracle_uniform(self, seed):
        prog = random_uniform_program(seed)
        for array in prog.arrays:
            est = estimate_distinct_accesses(prog, array)
            truth = exact_distinct_accesses(prog, array)
            assert truth <= est.upper
            if est.exact:
                assert est.lower == truth

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_total_window_bounded_by_footprint(self, seed):
        prog = random_program(seed, GeneratorConfig(max_trip=6))
        footprint = sum(
            exact_distinct_accesses(prog, array) for array in prog.arrays
        )
        assert max_total_window(prog) <= footprint
