"""Tests for loop normalization and the double-buffering model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation import exact_distinct_accesses
from repro.ir import parse_program
from repro.ir.generate import GeneratorConfig, random_program
from repro.memory.prefetch import best_tile_for_budget, plan_double_buffering
from repro.transform.normalization import is_unit_based, normalize_lower_bounds
from repro.window import max_total_window, max_window_size


class TestNormalization:
    def test_identity_on_unit_based(self):
        prog = parse_program("for i = 1 to 9 { A[i] = A[i-1] }")
        assert normalize_lower_bounds(prog) is prog

    def test_shifts_bounds(self):
        prog = parse_program("for i = -3 to 6 { A[i] = A[i-1] }")
        norm = normalize_lower_bounds(prog)
        assert is_unit_based(norm)
        assert norm.nest.trip_counts == prog.nest.trip_counts

    def test_preserves_touched_set(self):
        prog = parse_program(
            "for i = 0 to 7 { for j = 5 to 12 { A[2*i + j] = A[2*i + j - 3] } }"
        )
        norm = normalize_lower_bounds(prog)
        original = {
            ref.element(p)
            for p in prog.nest.iterate()
            for ref in prog.references
        }
        shifted = {
            ref.element(p)
            for p in norm.nest.iterate()
            for ref in norm.references
        }
        assert original == shifted

    @given(st.integers(0, 50_000))
    @settings(max_examples=40, deadline=None)
    def test_analysis_invariant(self, seed):
        prog = random_program(seed, GeneratorConfig(max_trip=6))
        norm = normalize_lower_bounds(prog)
        for array in prog.arrays:
            assert exact_distinct_accesses(prog, array) == exact_distinct_accesses(
                norm, array
            )
            assert max_window_size(prog, array) == max_window_size(norm, array)
        assert max_total_window(prog) == max_total_window(norm)


class TestDoubleBuffering:
    PROG = """
    for i = 1 to 16 {
      for j = 1 to 16 {
        B[i][j] = A[i-1][j] + A[i][j]
      }
    }
    """

    def test_plan_shape(self):
        prog = parse_program(self.PROG)
        plan = plan_double_buffering(prog, (4, 4))
        assert plan.tile_iterations == 16
        assert plan.buffer_words == 2 * plan.tile_footprint_words
        assert plan.n_tiles == 16
        assert plan.total_transfer_words == plan.n_tiles * plan.tile_footprint_words

    def test_bigger_tiles_amortize(self):
        prog = parse_program(self.PROG)
        small = plan_double_buffering(prog, (2, 2))
        large = plan_double_buffering(prog, (8, 8))
        assert large.words_per_iteration < small.words_per_iteration

    def test_bandwidth_math(self):
        prog = parse_program(self.PROG)
        plan = plan_double_buffering(prog, (4, 4))
        need = plan.bandwidth_required(compute_time_per_iteration=1.0)
        assert plan.transfers_hidden(need, 1.0)
        assert not plan.transfers_hidden(need * 0.5, 1.0)

    def test_bandwidth_validation(self):
        prog = parse_program(self.PROG)
        plan = plan_double_buffering(prog, (4, 4))
        with pytest.raises(ValueError):
            plan.bandwidth_required(0)

    def test_tile_validation(self):
        prog = parse_program(self.PROG)
        with pytest.raises(ValueError):
            plan_double_buffering(prog, (4,))
        with pytest.raises(ValueError):
            plan_double_buffering(prog, (0, 4))

    def test_best_tile_fits_budget(self):
        prog = parse_program(self.PROG)
        plan = best_tile_for_budget(prog, capacity_words=80, max_size=16)
        assert plan.buffer_words <= 80
        bigger = (plan.tile[0] + 1,) * 2
        if bigger[0] <= 16:
            assert plan_double_buffering(prog, bigger).buffer_words > 80

    def test_budget_too_small(self):
        prog = parse_program(self.PROG)
        with pytest.raises(ValueError):
            best_tile_for_budget(prog, capacity_words=1)
