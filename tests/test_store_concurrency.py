"""Concurrent access to the result store (ISSUE 10, satellite S4).

The store's crash-safety story is ``os.replace`` atomicity plus
corrupt-reads-are-misses.  These tests pin the three racy shapes the
service now exercises daily: two processes writing the same key, a
reader racing the compaction sweep, and the LRU front never
resurrecting a record compaction removed.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

import pytest

from repro import obs
from repro.store import ResultStore
from repro.store.maintenance import compact_store

KIND = "concurrency"
KEY = {"kernel": "2point", "probe": "same-key"}


@pytest.fixture
def observer():
    observer = obs.enable()
    try:
        yield observer
    finally:
        obs.disable()


def _writer_reader(root: str, tag: str, iterations: int) -> dict:
    """Hammer one key with writes while validating interleaved reads.

    Runs in a child process; returns its own corruption observations
    (child counters are invisible to the parent's observer).
    """
    observer = obs.enable()
    store = ResultStore(root)
    torn = 0
    for i in range(iterations):
        store.put(KIND, KEY, {"tag": tag, "i": i})
        store.drop_memory()  # force every read through the disk path
        value = store.get(KIND, KEY)
        if not (isinstance(value, dict) and value.get("tag") in ("a", "b")):
            torn += 1
    return {
        "torn": torn,
        "corrupt": observer.counters.get("store.corrupt", 0),
    }


class TestTwoProcessSameKey:
    def test_last_writer_wins_no_torn_reads(self, tmp_path, observer):
        iterations = 60
        with ProcessPoolExecutor(
            max_workers=2, mp_context=get_context("spawn")
        ) as pool:
            futures = [
                pool.submit(_writer_reader, str(tmp_path), tag, iterations)
                for tag in ("a", "b")
            ]
            reports = [future.result(timeout=120) for future in futures]
        for report in reports:
            # os.replace is atomic: a concurrent reader sees the old
            # record or the new one, never a torn or half-written file.
            assert report["torn"] == 0
            assert report["corrupt"] == 0
        # Exactly one record on disk, and it is one writer's final word.
        store = ResultStore(tmp_path)
        value = store.get(KIND, KEY)
        assert value == {"tag": value["tag"], "i": iterations - 1}
        assert store.record_count() == 1
        assert observer.counters.get("store.corrupt", 0) == 0
        # The surviving file is intact canonical JSON.
        record = json.loads(
            store.record_path(KIND, KEY).read_text(encoding="utf-8")
        )
        assert record["value"] == value


class TestReaderVsCompaction:
    def test_reader_survives_compaction_deleting_corrupt_record(
        self, tmp_path, observer
    ):
        store = ResultStore(tmp_path)
        store.put(KIND, {"keep": True}, {"ok": 1})
        corrupt_path = store.record_path(KIND, KEY)
        corrupt_path.parent.mkdir(parents=True, exist_ok=True)
        corrupt_path.write_text("{truncated", encoding="utf-8")

        reader = ResultStore(tmp_path)  # separate LRU front, same disk
        stop = threading.Event()
        failures: list[BaseException] = []

        def hammer():
            try:
                while not stop.is_set():
                    # Both keys: one being deleted under us, one stable.
                    assert reader.get(KIND, KEY) is None
                    reader.drop_memory()
                    value = reader.get(KIND, {"keep": True})
                    assert value in (None, {"ok": 1})
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            report = compact_store(store)
        finally:
            stop.set()
            thread.join(timeout=30.0)
        assert not failures, failures
        assert report.corrupt_deleted == 1
        assert report.kept == 1
        assert not corrupt_path.exists()
        # The stable record is still served after the sweep.
        assert reader.get(KIND, {"keep": True}) == {"ok": 1}


class TestLRUNeverResurrects:
    def test_compacted_record_is_gone_even_when_lru_was_warm(
        self, tmp_path, observer
    ):
        store = ResultStore(tmp_path)
        store.put(KIND, KEY, {"tag": "warm"})
        assert store.get(KIND, KEY) == {"tag": "warm"}  # LRU is hot
        # The disk copy rots; compaction removes it and must also drop
        # the in-memory front, or the store would keep serving a value
        # that no longer exists on disk.
        store.record_path(KIND, KEY).write_text("garbage", encoding="utf-8")
        report = compact_store(store)
        assert report.corrupt_deleted == 1
        assert store.get(KIND, KEY) is None

    def test_unchanged_sweep_keeps_lru_warm(self, tmp_path, observer):
        store = ResultStore(tmp_path)
        store.put(KIND, KEY, {"tag": "warm"})
        assert store.get(KIND, KEY) == {"tag": "warm"}
        before = observer.counters.get("store.mem.hits", 0)
        report = compact_store(store)
        assert not report.changed
        assert store.get(KIND, KEY) == {"tag": "warm"}
        assert observer.counters["store.mem.hits"] == before + 1
