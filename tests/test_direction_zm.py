"""Tests for direction vectors and the Zhao-Malik def-use comparator."""

import pytest

from repro.dependence.direction import (
    Direction,
    DirectionVector,
    nonuniform_direction,
)
from repro.ir import parse_program
from repro.linalg import IntMatrix
from repro.window import max_total_window, max_window_size
from repro.window.zhao_malik import def_use_peak, zhao_malik_report


class TestDirection:
    def test_of(self):
        assert Direction.of(3) is Direction.LT
        assert Direction.of(0) is Direction.EQ
        assert Direction.of(-1) is Direction.GT

    def test_from_distance(self):
        dv = DirectionVector.from_distance((3, 0, -2))
        assert str(dv) == "(<, =, >)"

    def test_merge(self):
        dv = DirectionVector.from_distances([(1, 2), (1, -1)])
        assert dv.components == (Direction.LT, Direction.ANY)

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            DirectionVector.from_distances([])

    def test_definitely_positive(self):
        assert DirectionVector.from_distance((0, 1)).is_lex_positive_definitely()
        assert DirectionVector.from_distance((1, -5)).is_lex_positive_definitely()
        assert not DirectionVector.from_distances(
            [(1, 0), (-1, 0)]
        ).is_lex_positive_definitely()
        assert not DirectionVector.from_distance((0, 0)).is_lex_positive_definitely()

    def test_level(self):
        assert DirectionVector.from_distance((0, 2, 1)).level() == 2
        assert DirectionVector.from_distances([(1, 0), (-1, 0)]).level() is None

    def test_row_dot_interval(self):
        dv = DirectionVector.from_distance((1, -1))  # d1 in [1,s], d2 in [-s,-1]
        lo, hi = dv.row_dot_interval((1, 1), (4, 4))
        assert lo == 1 - 4 and hi == 4 - 1

    def test_row_keeps_nonnegative(self):
        dv = DirectionVector.from_distance((1, 0))
        assert dv.row_keeps_nonnegative((1, 5), (9, 9))
        assert not dv.row_keeps_nonnegative((-1, 0), (9, 9))

    def test_arity_mismatch(self):
        dv = DirectionVector.from_distance((1, 0))
        with pytest.raises(ValueError):
            dv.row_dot_interval((1,), (4, 4))


class TestNonUniformDirection:
    def test_example6_direction(self):
        prog = parse_program(
            """
            for i = 1 to 12 {
              for j = 1 to 12 {
                S1: A[3*i + 7*j - 10] = 0
                S2: B[0] = A[4*i - 3*j + 60]
              }
            }
            """
        )
        write = prog.statements[0].writes[0]
        read = prog.statements[1].reads[0]
        dv = nonuniform_direction(prog.nest, write, read)
        assert dv is not None
        # Non-uniform pair: mixed directions expected.
        assert Direction.ANY in dv.components or dv.level() is not None

    def test_no_dependence(self):
        prog = parse_program(
            "for i = 1 to 6 { S1: A[2*i] = 0\n S2: B[0] = A[2*i+1] }"
        )
        write = prog.statements[0].writes[0]
        read = prog.statements[1].reads[0]
        assert nonuniform_direction(prog.nest, write, read) is None

    def test_uniform_pair_recovers_sign(self):
        prog = parse_program(
            "for i = 1 to 9 { for j = 1 to 9 { A[i][j] = A[i-1][j] } }"
        )
        write = prog.statements[0].writes[0]
        read = prog.statements[0].reads[0]
        dv = nonuniform_direction(prog.nest, write, read)
        assert dv.components == (Direction.LT, Direction.EQ)


class TestZhaoMalik:
    def test_input_array_live_from_start(self):
        # Read-only array: first element's ZM life starts at time 0, so
        # the def-use peak can exceed the access window.
        prog = parse_program("for i = 1 to 9 { B[0] = A[10 - i] }")
        window = max_window_size(prog, "A")
        zm = def_use_peak(prog, "A")
        assert window == 0  # each element accessed once: empty window
        assert zm == 9  # but all inputs wait on-chip under def-use rules

    def test_written_then_read(self):
        prog = parse_program(
            "for i = 1 to 9 { S1: T[i] = A[i]\n S2: B[0] = T[i] }"
        )
        assert def_use_peak(prog, "T") == 1

    def test_overwrite_kills_value(self):
        # T[0] is rewritten every iteration: only one value live at a time.
        prog = parse_program("for i = 1 to 9 { T[0] = A[i] }")
        assert def_use_peak(prog, "T") == 1

    def test_report_totals(self):
        prog = parse_program(
            "for i = 1 to 9 { S1: T[i] = A[i] + A[i-1] }"
        )
        report = zhao_malik_report(prog)
        assert set(report.per_array) == {"T", "A"}
        assert report.total_peak >= max(report.per_array.values())

    def test_zm_vs_window_on_example8(self):
        prog = parse_program(
            """
            for i = 1 to 25 {
              for j = 1 to 10 {
                X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
              }
            }
            """
        )
        window = max_total_window(prog)
        zm = zhao_malik_report(prog).total_peak
        # X is both input and output here; def-use counts the un-consumed
        # inputs from time zero, so ZM >= the access window.
        assert zm >= window

    def test_transformation_applies(self):
        prog = parse_program(
            "for i = 1 to 8 { for j = 1 to 8 { T[i][j] = T[i-1][j] } }"
        )
        t = IntMatrix([[0, 1], [1, 0]])
        assert def_use_peak(prog, "T", t) <= def_use_peak(prog, "T")

    def test_unknown_array(self):
        prog = parse_program("for i = 1 to 4 { A[i] = 1 }")
        with pytest.raises(KeyError):
            def_use_peak(prog, "Z")
