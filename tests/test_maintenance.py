"""Store compaction + legacy-counter retirement (ISSUE 10).

Covers :mod:`repro.store.maintenance` (the background sweep an
always-on service runs against its resident store) and the
``batch.items.timeout`` -> ``batch.item.timeout`` rename boundary:
canonicalization on record build, on-disk rewriting by the sweep, and
the reconciliation view never reporting a phantom counter delta.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import obs
from repro.obs import ledger, runctx
from repro.obs.ledger import (
    LEDGER_KIND,
    LEGACY_COUNTERS,
    canonical_counters,
    rewrite_legacy_record,
)
from repro.reporting.ledger import diff_runs, render_run_diff
from repro.store import ResultStore
from repro.store.maintenance import (
    CompactionReport,
    compact_store,
    render_compaction,
)


@pytest.fixture
def observer():
    observer = obs.enable()
    try:
        yield observer
    finally:
        obs.disable()


@pytest.fixture(autouse=True)
def _no_run_context():
    runctx.end_run()
    yield
    runctx.end_run()


# ----------------------------------------------------------------------
# counter canonicalization
# ----------------------------------------------------------------------

class TestCanonicalCounters:
    def test_legacy_spelling_folds_into_canonical(self):
        out = canonical_counters({
            "batch.items.timeout": 2,
            "batch.items.ok": 5,
        })
        assert out == {"batch.item.timeout": 2, "batch.items.ok": 5}

    def test_collision_collapses_with_max_not_sum(self):
        # Legacy records bumped *both* spellings for the same event:
        # summing would double every timeout across the rename boundary.
        out = canonical_counters({
            "batch.item.timeout": 3,
            "batch.items.timeout": 3,
        })
        assert out == {"batch.item.timeout": 3}

    def test_clean_map_passes_through_sorted(self):
        out = canonical_counters({"z": 1, "a": 2})
        assert list(out) == ["a", "z"]
        assert out == {"a": 2, "z": 1}

    def test_build_record_normalizes_at_source(self):
        ctx = runctx.RunContext(
            run_id="20250101-000000-aaaaaa", command="batch", env={}, git=None
        )
        record = ledger.build_record(ctx, {
            "counters": {"batch.items.timeout": 1, "batch.item.timeout": 1},
        })
        assert record["counters"] == {"batch.item.timeout": 1}
        assert record["batch"] == {"item.timeout": 1}


class TestRewriteLegacyRecord:
    def _legacy_record(self):
        return {
            "run": "20240101-000000-aaaaaa",
            "counters": {
                "batch.items.timeout": 2,
                "batch.item.timeout": 2,
                "batch.items.ok": 4,
                "store.misses": 1,
            },
            "batch": {"items.timeout": 2, "item.timeout": 2, "items.ok": 4},
            "store_io": {"misses": 1},
            "result_digest": "d" * 64,
        }

    def test_clean_record_returns_none(self):
        assert rewrite_legacy_record({"counters": {"batch.item.timeout": 1}}) \
            is None
        assert rewrite_legacy_record({"status": 0}) is None

    def test_rewrites_counters_and_rebuilds_sections(self):
        out = rewrite_legacy_record(self._legacy_record())
        assert out is not None
        assert out["counters"] == {
            "batch.item.timeout": 2,
            "batch.items.ok": 4,
            "store.misses": 1,
        }
        assert out["batch"] == {"item.timeout": 2, "items.ok": 4}
        assert out["store_io"] == {"misses": 1}
        # Identity fields untouched: the store key stays stable.
        assert out["run"] == "20240101-000000-aaaaaa"
        assert out["result_digest"] == "d" * 64

    def test_every_retired_spelling_has_a_live_target(self):
        for legacy, canonical in LEGACY_COUNTERS.items():
            assert legacy != canonical


# ----------------------------------------------------------------------
# phantom-delta regression: runs diff across the rename boundary
# ----------------------------------------------------------------------

class TestRunsDiffAcrossRename:
    def _record(self, counters, run="r"):
        return {"run": run, "counters": counters}

    def test_no_phantom_delta_across_rename_boundary(self):
        old = self._record(
            {"batch.items.timeout": 1, "batch.item.timeout": 1,
             "batch.items.ok": 3},
            run="old",
        )
        new = self._record(
            {"batch.item.timeout": 1, "batch.items.ok": 3}, run="new"
        )
        diff = diff_runs(old, new)
        assert diff.batch_delta == {}
        assert "items.timeout" not in render_run_diff(diff)

    def test_real_delta_still_reported(self):
        old = self._record({"batch.items.timeout": 1,
                            "batch.item.timeout": 1})
        new = self._record({"batch.item.timeout": 3})
        diff = diff_runs(old, new)
        assert diff.batch_delta == {"item.timeout": (1, 3)}
        rendered = render_run_diff(diff)
        assert "item.timeout: 1 -> 3" in rendered


# ----------------------------------------------------------------------
# the compaction sweep
# ----------------------------------------------------------------------

class TestCompactStore:
    def test_empty_store_is_a_clean_sweep(self, tmp_path):
        report = compact_store(ResultStore(tmp_path))
        assert report.scanned == 0
        assert not report.changed

    def test_valid_records_are_kept(self, tmp_path, observer):
        store = ResultStore(tmp_path)
        store.put("exact", {"k": 1}, 41)
        store.put("exact", {"k": 2}, 42)
        store.put("search", {"k": 3}, {"t": [[1]]})
        report = compact_store(store)
        assert report.scanned == 3
        assert report.kept == 3
        assert report.kinds == {"exact": 2, "search": 1}
        assert not report.changed
        assert store.get("exact", {"k": 1}) == 41
        assert observer.counters["store.compact.scanned"] == 3
        assert "store.compact.corrupt_deleted" not in observer.counters

    def test_corrupt_records_are_deleted(self, tmp_path, observer):
        store = ResultStore(tmp_path)
        path = store.put("exact", {"k": 1}, 41)
        path.write_text("{torn", encoding="utf-8")
        garbage = path.parent / ("f" * 32 + ".json")
        garbage.write_text(json.dumps({"schema": 999}), encoding="utf-8")
        report = compact_store(store)
        assert report.corrupt_deleted == 2
        assert not path.exists() and not garbage.exists()
        assert observer.counters["store.compact.corrupt_deleted"] == 2

    def test_misfiled_record_is_deleted(self, tmp_path):
        # Valid JSON whose filename is not the content address of its
        # key: unreachable by get(), pure dead weight only a sweep sees.
        store = ResultStore(tmp_path)
        real = store.put("exact", {"k": 1}, 41)
        misfiled = real.parent / ("0" * 32 + ".json")
        misfiled.write_text(real.read_text(encoding="utf-8"),
                            encoding="utf-8")
        report = compact_store(store)
        assert report.corrupt_deleted == 1
        assert not misfiled.exists()
        assert real.exists()

    def test_legacy_ledger_record_rewritten_on_disk(self, tmp_path, observer):
        store = ResultStore(tmp_path)
        run_id = "20240101-000000-aaaaaa"
        store.put(LEDGER_KIND, {"run": run_id}, {
            "run": run_id,
            "counters": {"batch.items.timeout": 1, "batch.item.timeout": 1},
            "batch": {"items.timeout": 1, "item.timeout": 1},
        })
        report = compact_store(store)
        assert report.legacy_rewritten == 1
        assert report.kept == 1
        healed = store.get(LEDGER_KIND, {"run": run_id})
        assert healed["counters"] == {"batch.item.timeout": 1}
        assert healed["batch"] == {"item.timeout": 1}
        assert observer.counters["store.compact.legacy_rewritten"] == 1
        # A second sweep finds nothing left to rewrite.
        assert compact_store(store).legacy_rewritten == 0

    def test_stale_tmp_files_swept_fresh_ones_kept(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("exact", {"k": 1}, 41)
        kind_dir = store.base / "exact"
        stale = kind_dir / "abc.json.tmp.999"
        stale.write_text("{", encoding="utf-8")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        fresh = kind_dir / "def.json.tmp.1000"
        fresh.write_text("{", encoding="utf-8")
        report = compact_store(store)
        assert report.tmp_removed == 1
        assert not stale.exists()
        assert fresh.exists()

    def test_lru_never_resurrects_a_compacted_record(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put("exact", {"k": 1}, 41)
        assert store.get("exact", {"k": 1}) == 41  # hot in the LRU front
        path.write_text("{torn by a crashed writer", encoding="utf-8")
        report = compact_store(store)
        assert report.corrupt_deleted == 1
        # The sweep dropped the in-memory front along with the file: a
        # hot entry must not serve a record that no longer exists.
        assert store.get("exact", {"k": 1}) is None

    def test_report_is_json_ready(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("exact", {"k": 1}, 41)
        report = compact_store(store)
        payload = report.as_dict()
        json.dumps(payload)
        assert payload["scanned"] == 1
        assert payload["kinds"] == {"exact": 1}

    def test_render_compaction_smoke(self):
        report = CompactionReport(
            scanned=3, kept=2, corrupt_deleted=1, legacy_rewritten=0,
            tmp_removed=2, kinds={"exact": 2}, wall_s=0.01,
        )
        text = render_compaction(report)
        assert "scanned 3 records" in text
        assert "deleted 1 corrupt" in text
        assert "removed 2 stale temp file(s)" in text
