"""Batched multi-candidate scoring: differential parity and kernels (ISSUE 8).

``window.batched.batched_mws`` must be value-identical to scoring each
candidate through ``simulator.max_window_size`` / ``max_total_window``
— for random programs at depths 2-4, multi-reference arrays, ``None``
and overflow candidates, and under every ``REPRO_KERNEL`` backend — and
its counters must reconcile with the serial path's.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.ir import parse_program
from repro.ir.generate import GeneratorConfig, random_program
from repro.linalg import IntMatrix
from repro.transform.elementary import (
    bounded_unimodular_matrices,
    signed_permutations,
)
from repro.transform.search import clear_exact_cache
from repro.window import batched
from repro.window.fast import clear_iteration_cache
from repro.window.simulator import max_total_window, max_window_size


@pytest.fixture(autouse=True)
def fresh_state():
    obs.disable()
    clear_exact_cache()
    clear_iteration_cache()
    yield
    obs.disable()
    clear_exact_cache()
    clear_iteration_cache()


def _candidate_pool(depth: int, seed: int) -> list[IntMatrix | None]:
    """None + signed permutations + (2-D) skewed unimodular matrices."""
    rng = random.Random(seed)
    pool: list[IntMatrix | None] = list(signed_permutations(depth))
    if depth == 2:
        pool.extend(bounded_unimodular_matrices(2, 1))
    rng.shuffle(pool)
    return [None] + pool[:7]


def _serial_values(program, candidates, array):
    if array is None:
        return [
            max_total_window(program, t, engine="fast") for t in candidates
        ]
    return [
        max_window_size(program, array, t, engine="fast") for t in candidates
    ]


_CONFIGS = [
    GeneratorConfig(depth=2, min_trip=2, max_trip=8),
    GeneratorConfig(depth=2, min_trip=2, max_trip=8, uniform_only=False),
    GeneratorConfig(depth=3, min_trip=2, max_trip=4, max_coeff=2),
    GeneratorConfig(depth=4, min_trip=2, max_trip=3, max_coeff=1),
]


class TestDifferentialParity:
    @pytest.mark.parametrize("cfg", _CONFIGS, ids=lambda c: f"depth{c.depth}")
    @pytest.mark.parametrize("seed", range(6))
    def test_batched_matches_serial(self, cfg, seed):
        program = random_program(seed * 31 + cfg.depth, cfg)
        candidates = _candidate_pool(program.nest.depth, seed)
        for array in [None, *program.arrays]:
            got = batched.batched_mws(
                program, candidates, array=array, engine="fast"
            )
            assert got == _serial_values(program, candidates, array), (
                f"array={array}"
            )

    @pytest.mark.parametrize("mode", batched.KERNEL_MODES)
    def test_all_kernel_modes_agree(self, mode, monkeypatch):
        monkeypatch.setenv(batched.KERNEL_ENV, mode)
        clear_iteration_cache()
        program = random_program(5, GeneratorConfig(depth=2, max_trip=8))
        candidates = _candidate_pool(2, 5)
        for array in [None, *program.arrays]:
            got = batched.batched_mws(
                program, candidates, array=array, engine="fast"
            )
            assert got == _serial_values(program, candidates, array)

    def test_multi_reference_multi_array(self):
        program = parse_program(
            "for i = 1 to 9 { for j = 1 to 7 { "
            "A[i + 2*j] = A[i + 2*j - 3] + B[2*i - j] + B[2*i - j + 1] } }"
        )
        candidates = _candidate_pool(2, 11)
        for array in [None, "A", "B"]:
            got = batched.batched_mws(program, candidates, array=array)
            assert got == _serial_values(program, candidates, array)

    def test_non_fast_engine_scores_per_candidate(self):
        program = random_program(3, GeneratorConfig(depth=2, max_trip=5))
        candidates = _candidate_pool(2, 3)
        array = program.arrays[0]
        got = batched.batched_mws(
            program, candidates, array=array, engine="reference"
        )
        assert got == [
            max_window_size(program, array, t, engine="reference")
            for t in candidates
        ]

    def test_empty_candidates(self):
        program = random_program(1, GeneratorConfig(depth=2))
        assert batched.batched_mws(program, [], array=None) == []


class TestEdgeCases:
    def test_non_unimodular_candidate_raises(self):
        program = random_program(2, GeneratorConfig(depth=2))
        singular = IntMatrix([[1, 0], [2, 0]])
        with pytest.raises(ValueError):
            batched.batched_mws(program, [None, singular], array=None)

    def test_unknown_array_raises_keyerror(self):
        program = random_program(2, GeneratorConfig(depth=2))
        with pytest.raises(KeyError):
            batched.batched_mws(program, [None], array="NOPE")

    def test_overflow_candidate_falls_back_per_row(self):
        # A huge skew coefficient makes the candidate's transformed
        # spans overflow the int64 pack even on a tiny nest: that row
        # alone must detour through dense lexsort ranks
        # (fast.pack.fallback) while the rest of the batch stays fused —
        # values unchanged either way.
        program = parse_program(
            "for i = 1 to 8 { for j = 1 to 8 { A[i + j] = A[i + j - 1] } }"
        )
        skew = IntMatrix([[1, 2**58], [0, 1]])
        observer = obs.enable()
        got = batched.batched_mws(program, [None, skew], array="A")
        obs.disable()
        assert observer.summary()["counters"]["fast.pack.fallback"] >= 1
        assert got == _serial_values(program, [None, skew], "A")

    def test_chunked_batches_match_unchunked(self, monkeypatch):
        program = random_program(7, GeneratorConfig(depth=2, max_trip=8))
        candidates = _candidate_pool(2, 7)
        want = batched.batched_mws(program, candidates, array=None)
        # Force a chunk size of 1 row: every candidate becomes its own
        # internal chunk and the concatenated result must be unchanged.
        monkeypatch.setattr(batched, "_CHUNK_ELEMS", 1)
        assert batched.batched_mws(program, candidates, array=None) == want


class TestCountersAndCache:
    def _counters(self, fn):
        observer = obs.enable()
        fn()
        obs.disable()
        return observer.summary()["counters"]

    def test_batched_counter_parity_with_serial(self):
        program = random_program(9, GeneratorConfig(depth=2, max_trip=8))
        candidates = _candidate_pool(2, 9)
        array = program.arrays[0]
        serial = self._counters(
            lambda: _serial_values(program, candidates, array)
        )
        clear_iteration_cache()
        batch = self._counters(
            lambda: batched.batched_mws(program, candidates, array=array)
        )
        # Per-candidate accounting reconciles: one simulate per candidate
        # whether scored one at a time or as a batch.
        assert batch["fast.simulate.calls"] == serial["fast.simulate.calls"]
        assert batch["fast.simulate.calls"] == len(candidates)
        assert batch["engine.fast.calls"] == len(candidates)
        assert batch["batch.candidates"] == len(candidates)

    def test_kernel_specialized_once_per_program(self):
        program = random_program(4, GeneratorConfig(depth=2, max_trip=6))
        counters = self._counters(
            lambda: [
                batched.batched_mws(program, [None], array=None)
                for _ in range(3)
            ]
        )
        assert counters["kernel.specialized"] == 1

    def test_clear_iteration_cache_drops_kernels(self):
        program = random_program(4, GeneratorConfig(depth=2, max_trip=6))
        batched.batched_mws(program, [None], array=None)
        assert len(batched._KERNELS) >= 1
        clear_iteration_cache()
        assert len(batched._KERNELS) == 0

    def test_c_mode_unavailable_falls_back_to_python(self, monkeypatch):
        # Simulate the CI image (no cffi): mode "c" must transparently
        # build the python kernel and count the fallback.
        monkeypatch.setenv(batched.KERNEL_ENV, "c")
        monkeypatch.setattr(batched, "_compile_c", lambda *a: None)
        program = random_program(6, GeneratorConfig(depth=2, max_trip=6))
        candidates = _candidate_pool(2, 6)
        counters = self._counters(
            lambda: batched.batched_mws(program, candidates, array=None)
        )
        assert counters["kernel.fallback"] == 1
        clear_iteration_cache()
        monkeypatch.setenv(batched.KERNEL_ENV, "python")
        assert batched.batched_mws(
            program, candidates, array=None
        ) == _serial_values(program, candidates, None)


class TestKnobs:
    def test_kernel_mode_default_and_validation(self, monkeypatch):
        monkeypatch.delenv(batched.KERNEL_ENV, raising=False)
        assert batched.kernel_mode() == "python"
        monkeypatch.setenv(batched.KERNEL_ENV, "off")
        assert batched.kernel_mode() == "off"
        monkeypatch.setenv(batched.KERNEL_ENV, "turbo")
        with pytest.raises(ValueError):
            batched.kernel_mode()

    def test_batch_size_knob(self, monkeypatch):
        monkeypatch.delenv(batched.BATCH_SIZE_ENV, raising=False)
        assert batched.batch_size() == batched.DEFAULT_BATCH_SIZE
        monkeypatch.setenv(batched.BATCH_SIZE_ENV, "4")
        assert batched.batch_size() == 4
