"""Deeper cross-cutting property tests over random programs.

These tie several subsystems together: optimal-policy dominance,
allocation conflict-freedom, fusion/distribution semantics, transformed
window invariance under execution-order-preserving matrices, plus the
metamorphic oracles of :mod:`repro.check` driven over deterministic
seeds.

Hypothesis runs under the derandomized ``repro`` profile registered in
``tests/conftest.py``, so every run replays the same examples; direct
seed ranges honor ``REPRO_FUZZ_SEED``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import assert_oracle, fuzz_seeds

from repro.ir import parse_program
from repro.ir.generate import GeneratorConfig, random_program
from repro.ir.interpreter import execute, initial_state, states_equal
from repro.layout import RowMajorLayout
from repro.linalg import IntMatrix
from repro.memory import simulate_scratchpad
from repro.transform import allocate_window, distribute
from repro.window import max_total_window, max_window_size

seeds = st.integers(0, 100_000)


class TestPolicyDominance:
    @given(seeds, st.integers(2, 24))
    @settings(max_examples=40, deadline=None)
    def test_belady_never_loses_to_lru(self, seed, capacity):
        prog = random_program(seed, GeneratorConfig(max_trip=6))
        belady = simulate_scratchpad(prog, capacity, policy="belady")
        lru = simulate_scratchpad(prog, capacity, policy="lru")
        assert belady.misses <= lru.misses
        assert belady.cold_misses == lru.cold_misses  # compulsory is policy-free

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_mws_capacity_is_cold_only(self, seed):
        prog = random_program(seed, GeneratorConfig(max_trip=6))
        mws = max_total_window(prog)
        stats = simulate_scratchpad(prog, mws + len(prog.references) + 1)
        assert stats.capacity_misses == 0


class TestAllocationProperty:
    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_modulo_allocation_always_valid(self, seed):
        prog = random_program(
            seed, GeneratorConfig(max_trip=6, array_rank=1)
        )
        array = prog.arrays[0]
        alloc = allocate_window(prog, array)
        assert alloc.mws <= alloc.modulus <= max(1, alloc.declared)
        # Re-verify conflict-freedom independently.
        from repro.transform.window_allocation import (
            _address_lifetimes,
            modulo_is_valid,
        )

        lifetimes = _address_lifetimes(prog, array, RowMajorLayout(), None)
        if alloc.modulus < alloc.declared:
            assert modulo_is_valid(lifetimes, alloc.modulus)


class TestDistributionProperty:
    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_distribution_preserves_semantics(self, seed):
        prog = random_program(seed, GeneratorConfig(max_trip=5, max_statements=3))
        seq = distribute(prog)
        state = initial_state(prog)
        chained = state
        for part in seq.programs:
            chained = execute(part, state=chained)
        assert states_equal(chained, execute(prog, state=state))

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_distribution_covers_all_statements(self, seed):
        prog = random_program(seed, GeneratorConfig(max_trip=5, max_statements=3))
        seq = distribute(prog)
        labels = [s.label for p in seq.programs for s in p.statements]
        assert sorted(labels) == sorted(s.label for s in prog.statements)


class TestWindowInvariances:
    def test_identity_transformation_is_noop(self):
        prog = parse_program(
            "for i = 1 to 9 { for j = 1 to 9 { X[2*i + 5*j] = X[2*i + 5*j + 4] } }"
        )
        ident = IntMatrix.identity(2)
        assert max_window_size(prog, "X") == max_window_size(prog, "X", ident)

    @given(seeds, st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_inner_skew_preserves_window(self, seed, factor):
        # T = [[1, 0], [f, 1]] keeps the execution order identical (outer
        # index unchanged, inner strictly increasing in j for fixed i),
        # so every window is unchanged.
        prog = random_program(seed, GeneratorConfig(max_trip=6))
        t = IntMatrix([[1, 0], [factor, 1]])
        for array in prog.arrays:
            assert max_window_size(prog, array) == max_window_size(prog, array, t)

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_window_nonnegative_and_bounded(self, seed):
        prog = random_program(seed, GeneratorConfig(max_trip=6))
        for array in prog.arrays:
            mws = max_window_size(prog, array)
            assert 0 <= mws <= prog.nest.total_iterations * len(prog.refs_to(array))


class TestMetamorphicOracles:
    """Drive the registry's metamorphic relations over fixed seed ranges
    (failures shrink themselves and print a replay command)."""

    @pytest.mark.parametrize("seed", fuzz_seeds(25, salt=21))
    def test_relabel_distinct_invariance(self, seed, tmp_path):
        assert_oracle("relabel-distinct-invariance", seed, tmp_path)

    @pytest.mark.parametrize("seed", fuzz_seeds(8, salt=22))
    def test_relabel_distinct_invariance_3d(self, seed, tmp_path):
        assert_oracle("relabel-distinct-invariance-3d", seed, tmp_path)

    @pytest.mark.parametrize("seed", fuzz_seeds(20, salt=23))
    def test_permutation_preserves_semantics(self, seed, tmp_path):
        assert_oracle("permutation-preserves-semantics", seed, tmp_path)

    @pytest.mark.parametrize("seed", fuzz_seeds(25, salt=24))
    def test_trip_extension_monotone(self, seed, tmp_path):
        assert_oracle("trip-extension-monotone", seed, tmp_path)

    @pytest.mark.parametrize("seed", fuzz_seeds(25, salt=25))
    def test_time_reversal_mws_invariance(self, seed, tmp_path):
        assert_oracle("time-reversal-mws-invariance", seed, tmp_path)

    @pytest.mark.parametrize("seed", fuzz_seeds(20, salt=26))
    def test_cascade_conformance(self, seed, tmp_path):
        assert_oracle("cascade-conformance", seed, tmp_path)

    @pytest.mark.parametrize("seed", fuzz_seeds(20, salt=27))
    def test_line_window_element_parity(self, seed, tmp_path):
        assert_oracle("line-window-element-parity", seed, tmp_path)
