"""Shrinker tests: greedy minimization behavior, predicate safety, and a
full rehearsal of the PR-3 d==n offset-dedup bug — reintroduce it,
watch the oracle fail, shrink the failure to <= 2 statements, and check
the corpus replay flips red/green with the bug."""

import pytest

from repro.check import get_oracle, oracle_predicate, shrink, shrink_case
from repro.check.runner import replay_file, write_repro
from repro.dependence.reuse import group_reuse_distances
from repro.estimation.distinct import (
    DistinctAccessEstimate,
    reuse_from_distances,
)
from repro.ir import parse_program
from repro.ir.generate import GeneratorConfig, random_program


class TestShrinkMechanics:
    def test_shrinks_to_single_statement_and_iteration(self):
        program = parse_program(
            """
            for i = 1 to 6 {
              for j = 1 to 6 {
                S1: A[i][j] = A[i - 1][j] + B[i][j]
                S2: B[i][j] = B[i][j - 1]
                S3: C[i + j] = C[i + j + 3]
              }
            }
            """
        )

        def touches_b(candidate):
            return "B" in candidate.arrays

        result = shrink(program, touches_b)
        assert touches_b(result.program)
        assert result.statements == 1
        assert result.iterations == 1  # trips shrink to one iteration each
        assert result.steps > 0
        assert result.attempts >= result.steps

    def test_offsets_and_coefficients_move_toward_zero(self):
        program = parse_program(
            "for i = 1 to 4 { for j = 1 to 4 { A[3*i + 2*j + 4] = 0 } }"
        )

        def writes_a(candidate):
            return any(stmt.writes for stmt in candidate.statements)

        result = shrink(program, writes_a)
        ref = result.program.statements[0].writes[0]
        # The predicate doesn't constrain the access, so everything
        # minimizes — offset and all coefficients reach zero (a
        # scalar-in-nest write is valid in the model).
        assert ref.offset == (0,)
        assert all(c == 0 for row in ref.access.rows for c in row)

    def test_normalizes_labels_and_name(self):
        program = parse_program(
            "for i = 1 to 3 { Sx: A[i] = A[i + 1] \n Sy: B[i] = B[i + 2] }"
        )
        result = shrink(program, lambda p: True)
        assert result.program.name == "repro"
        assert [s.label for s in result.program.statements] == ["S1"]

    def test_requires_failing_input(self):
        program = parse_program("for i = 1 to 3 { A[i] = A[i + 1] }")
        with pytest.raises(ValueError, match="does not fail"):
            shrink(program, lambda p: False)

    def test_oracle_predicate_swallows_crashes(self):
        oracle = get_oracle("estimate-brackets-exact")
        predicate = oracle_predicate(oracle, 0)
        healthy = random_program(0, GeneratorConfig(depth=2, max_trip=4))
        assert predicate(healthy) is False  # oracle passes -> not failing
        # A program the estimator cannot handle must read as "not
        # failing", not crash the shrink loop.
        weird = parse_program("for i = 1 to 3 { A[0*i] = A[0*i + 1] }")
        assert predicate(weird) in (True, False)


# ----------------------------------------------------------------------
# the PR-3 d==n offset-dedup bug, reintroduced
# ----------------------------------------------------------------------

def _buggy_same_rank(program, array):
    """``distinct_accesses_same_rank`` without the offset dedup — the
    exact shape of the PR-3 bug: duplicate-offset references inflate
    ``r`` while contributing no reuse distance, so ``r * total - reuse``
    double-counts and is still flagged exact for r == 2."""
    refs = list(program.refs_to(array))
    if not refs:
        raise KeyError(array)
    if not program.is_uniformly_generated(array):
        raise ValueError(f"{array}: references are not uniformly generated")
    access = refs[0].access
    if not access.is_square() or access.det() == 0:
        raise ValueError(f"{array}: access matrix is singular or not square")
    trips = program.nest.trip_counts
    total = program.nest.total_iterations
    r = len(refs)
    if r == 1:
        return DistinctAccessEstimate(array, total, total, "d==n single ref", True, 0)
    distances = group_reuse_distances(refs)
    reuse = reuse_from_distances(trips, distances)
    value = r * total - reuse
    exact = r == 2
    lower = value if exact else min(total, value)
    return DistinctAccessEstimate(array, lower, value, "d==n multi ref", exact, reuse)


#: A manifest witness: both references share offset (0, 0), so the buggy
#: formula claims A_d = 2*4 - 0 = 8 "exactly" while the truth is 4.
_DEDUP_WITNESS = "for i1 = 1 to 2 { for i2 = 1 to 2 { A0[i1][i2] = A0[i1][i2] } }"


@pytest.fixture
def dedup_bug(monkeypatch):
    import repro.estimation.distinct as distinct_module

    monkeypatch.setattr(
        distinct_module, "distinct_accesses_same_rank", _buggy_same_rank
    )


class TestDedupBugRehearsal:
    def test_oracle_catches_reintroduced_bug(self, dedup_bug):
        oracle = get_oracle("estimate-brackets-exact")
        program = parse_program(_DEDUP_WITNESS)
        violation = oracle.check(program, 0)
        assert violation is not None
        assert "exact" in violation.detail

    def test_fixed_behavior_passes(self):
        oracle = get_oracle("estimate-brackets-exact")
        assert oracle.check(parse_program(_DEDUP_WITNESS), 0) is None

    def test_shrinks_to_at_most_two_statements(self, dedup_bug, tmp_path):
        """The acceptance criterion, end to end: a larger failing program
        shrinks to <= 2 statements, and its corpus file replays red
        under the bug and green without it."""
        oracle = get_oracle("estimate-brackets-exact")
        program = parse_program(
            """
            for i1 = 1 to 4 {
              for i2 = 1 to 4 {
                S1: B[i1 + i2] = B[i1 + i2 + 1]
                S2: A0[i1][i2] = A0[i1][i2] + B[i1 + 2*i2]
                S3: C[i1][i2] = C[i1 - 1][i2]
              }
            }
            """
        )
        assert oracle.check(program, 0) is not None
        result, violation = shrink_case(oracle, program, 0)
        assert result.statements <= 2
        path = write_repro(
            tmp_path, oracle.name, result.program, 0, violation.detail
        )
        assert replay_file(path) is not None  # still red while bug present

    def test_checked_in_corpus_file_flips_red(self, dedup_bug):
        """Replaying the seeded corpus entry fails while the bug is in."""
        from pathlib import Path

        corpus = Path(__file__).parent / "corpus"
        matches = sorted(corpus.glob("estimate-brackets-exact--*.json"))
        assert matches, "expected the seeded d==n dedup repro in tests/corpus"
        assert any(replay_file(p) is not None for p in matches)
