"""Parallel/memoized search engine: parity and cache semantics (ISSUE 1).

``transform.search`` with ``workers > 1`` must return byte-identical
``SearchResult``s to serial mode on every Figure-2 kernel, and the
content-hash cache must make rebuilt-but-equal programs share exact
simulation results.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.optimizer import optimize_program
from repro.ir import parse_program
from repro.kernels import KERNELS
from repro.linalg import IntMatrix
from repro.transform.elementary import signed_permutations
from repro.transform.search import (
    PARALLEL_THRESHOLD,
    clear_exact_cache,
    evaluate_exact,
    exact_cache_size,
    search_best_transformation,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    obs.disable()
    clear_exact_cache()
    yield
    obs.disable()
    clear_exact_cache()


class TestSerialParallelParity:
    @pytest.mark.parametrize("name", [spec.name for spec in KERNELS])
    def test_search_identical_all_kernels(self, name):
        spec = next(s for s in KERNELS if s.name == name)
        program = spec.build()
        array = program.arrays[0]
        serial = search_best_transformation(program, array)
        clear_exact_cache()
        parallel = search_best_transformation(program, array, workers=2)
        # SearchResult is a frozen dataclass: == compares every field,
        # and identical reprs make the results byte-identical.
        assert serial == parallel
        assert repr(serial) == repr(parallel)

    def test_optimize_program_identical(self):
        program = parse_program(
            "for i = 1 to 25 { for j = 1 to 10 { "
            "X[2*i + 5*j + 1] = X[2*i + 5*j + 5] } }"
        )
        serial = optimize_program(program)
        clear_exact_cache()
        parallel = optimize_program(program, workers=2)
        assert serial == parallel

    def test_small_batches_stay_serial(self):
        """Below the threshold no pool is spawned — same code path, same
        results, no fork overhead (covered by evaluating < threshold
        candidates with workers set)."""
        program = parse_program(
            "for i = 1 to 6 { for j = 1 to 6 { A[i][j] = A[i-1][j] } }"
        )
        ts = [None, IntMatrix([[0, 1], [1, 0]])]
        assert evaluate_exact(program, ts, array="A", workers=4) == \
            evaluate_exact(program, ts, array="A", workers=0)


class TestWorkerCounterPropagation:
    """Satellite (b): counters bumped inside pool workers must reach the
    parent observer, so serial and parallel totals reconcile."""

    def _candidates(self):
        # Enough distinct candidates to clear PARALLEL_THRESHOLD.
        candidates = [None] + list(signed_permutations(2)) + [
            IntMatrix([[1, 1], [0, 1]]),
            IntMatrix([[1, 0], [1, 1]]),
        ]
        assert len(candidates) > PARALLEL_THRESHOLD
        return candidates

    def _run(self, workers):
        program = parse_program(
            "for i = 1 to 12 { for j = 1 to 12 { A[i][j] = A[i-1][j-1] } }"
        )
        observer = obs.enable()
        values = evaluate_exact(
            program, self._candidates(), array="A", workers=workers
        )
        obs.disable()
        return values, observer.summary()["counters"]

    def test_serial_parallel_counter_totals_match(self):
        serial_values, serial = self._run(workers=0)
        clear_exact_cache()
        parallel_values, parallel = self._run(workers=2)
        assert serial_values == parallel_values
        # The simulator/cache counters must reconcile exactly.  (The
        # fast.iter_matrix.* counters legitimately differ: each worker
        # unpickles its own Program copy, so its weak-keyed iteration
        # cache misses where the serial parent hits.)
        for key in (
            "fast.simulate.calls",
            "search.cache.misses",
            "search.cache.hits",
        ):
            assert serial.get(key, 0) == parallel.get(key, 0), key
        assert serial["fast.simulate.calls"] == len(self._candidates())

    def test_parallel_batch_counters_recorded(self):
        _, parallel = self._run(workers=2)
        assert parallel["search.parallel.batches"] == 1
        assert parallel["search.parallel.tasks"] == len(self._candidates())

    def test_parallel_without_observer_still_works(self):
        program = parse_program(
            "for i = 1 to 12 { for j = 1 to 12 { A[i][j] = A[i-1][j-1] } }"
        )
        candidates = self._candidates()
        serial = evaluate_exact(program, candidates, array="A", workers=0)
        clear_exact_cache()
        parallel = evaluate_exact(program, candidates, array="A", workers=2)
        assert serial == parallel
        assert not obs.enabled()


class TestExactCache:
    def test_cache_shared_across_equal_programs(self):
        src = "for i = 1 to 8 { for j = 1 to 8 { A[i][j] = A[i-1][j] } }"
        p1 = parse_program(src, name="first")
        p2 = parse_program(src, name="second")
        assert p1.signature() == p2.signature()
        evaluate_exact(p1, [None], array="A")
        before = exact_cache_size()
        # Same content, different object and name: pure cache hit.
        evaluate_exact(p2, [None], array="A")
        assert exact_cache_size() == before

    def test_different_programs_different_keys(self):
        p1 = parse_program("for i = 1 to 8 { A[i] = A[i-1] }")
        p2 = parse_program("for i = 1 to 9 { A[i] = A[i-1] }")
        assert p1.signature() != p2.signature()
        evaluate_exact(p1, [None], array="A")
        evaluate_exact(p2, [None], array="A")
        assert exact_cache_size() == 2

    def test_cached_values_match_fresh(self):
        program = parse_program(
            "for i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j-1] } }"
        )
        t = IntMatrix([[0, 1], [1, 0]])
        first = evaluate_exact(program, [None, t], array="A")
        second = evaluate_exact(program, [None, t], array="A")
        assert first == second

    def test_total_and_per_array_keys_disjoint(self):
        program = parse_program(
            "for i = 1 to 6 { for j = 1 to 6 { A[i][j] = B[j][i] } }"
        )
        evaluate_exact(program, [None], array=None)
        evaluate_exact(program, [None], array="A")
        evaluate_exact(program, [None], array="B")
        assert exact_cache_size() == 3


class TestSignature:
    def test_signature_stable_across_rebuilds(self):
        from repro.kernels.suite import sor

        assert sor().signature() == sor().signature()

    def test_signature_ignores_name(self):
        src = "for i = 1 to 4 { A[i] = 1 }"
        assert (
            parse_program(src, name="x").signature()
            == parse_program(src, name="y").signature()
        )

    def test_signature_sees_decls(self):
        from repro.ir import NestBuilder

        plain = NestBuilder().loop("i", 1, 4).use("S1", ("A", [[1]], [0])).build()
        declared = (
            NestBuilder()
            .loop("i", 1, 4)
            .declare("A", 99)
            .use("S1", ("A", [[1]], [0]))
            .build()
        )
        assert plain.signature() != declared.signature()
