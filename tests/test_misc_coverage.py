"""Coverage sweep for smaller surfaces: viz edge cases, report objects,
energy totals, codegen bound evaluators, search results."""

import pytest
from fractions import Fraction

from repro.core import analyze_program, full_report
from repro.ir import parse_program
from repro.linalg import IntMatrix
from repro.memory import MemoryCostModel
from repro.polyhedral import ConstraintSystem, loop_bounds
from repro.reporting import Figure2Row, render_table
from repro.transform.search import SearchResult
from repro.viz import render_profile_bars, sparkline
from repro.window.simulator import WindowProfile


class TestWindowProfileObject:
    def test_empty_profile(self):
        profile = WindowProfile("A", ())
        assert profile.max_size == 0
        assert profile.average_size == 0.0

    def test_average(self):
        profile = WindowProfile("A", (0, 2, 4))
        assert profile.average_size == 2.0
        assert profile.argmax() == 2


class TestVizEdges:
    def test_sparkline_width_one(self):
        assert len(sparkline([5, 1, 3], width=1)) == 1

    def test_sparkline_constant(self):
        line = sparkline([7, 7, 7])
        assert set(line) == {"@"}

    def test_bars_zero_peak(self):
        art = render_profile_bars([0, 0, 0], height=3)
        assert "0 +" in art

    def test_bars_no_title(self):
        art = render_profile_bars([1, 2], height=2)
        assert art.splitlines()[0].endswith("#") or "|" in art


class TestReportingObjects:
    def test_row_reductions(self):
        row = Figure2Row("k", 100, 25, 10, 70.0, 85.0)
        assert row.unopt_reduction == 75.0
        assert row.opt_reduction == 90.0

    def test_render_empty(self):
        text = render_table([])
        assert "code" in text

    def test_search_result_str(self):
        result = SearchResult("X", IntMatrix.identity(2), Fraction(5), 4, 10, "m")
        assert "X" in str(result) and "exact=4" in str(result)

    def test_search_result_unknown_exact(self):
        result = SearchResult("X", IntMatrix.identity(2), Fraction(5), None, 10, "m")
        assert "exact=?" in str(result)


class TestEnergyTotals:
    def test_total_energy_components(self):
        model = MemoryCostModel()
        base = model.total_energy_pj(1024, 100, 0)
        with_traffic = model.total_energy_pj(1024, 100, 10, offchip_energy_pj=50.0)
        assert with_traffic == pytest.approx(base + 500.0)

    def test_custom_exponents(self):
        flat = MemoryCostModel(energy_exponent=0.0)
        assert flat.energy_per_access_pj(64) == flat.energy_per_access_pj(65536)


class TestBoundEvaluators:
    def test_skewed_bounds_evaluate(self):
        prog = parse_program("for i = 1 to 5 { for j = 1 to 4 { A[i][j] = 1 } }")
        system = ConstraintSystem.transformed_nest(prog.nest, IntMatrix([[1, 1], [0, 1]]))
        bounds = loop_bounds(system)
        # Outer u1 = i + j in [2, 9]; inner u2 = j in [max(1, u1-5), min(4, u1-1)].
        assert bounds[0].lower_value(()) == 2
        assert bounds[0].upper_value(()) == 9
        assert bounds[1].lower_value((2,)) == 1
        assert bounds[1].upper_value((2,)) == 1
        assert bounds[1].lower_value((9,)) == 4

    def test_render_min_max(self):
        prog = parse_program("for i = 1 to 5 { for j = 1 to 4 { A[i][j] = 1 } }")
        system = ConstraintSystem.transformed_nest(prog.nest, IntMatrix([[1, 1], [0, 1]]))
        bounds = loop_bounds(system)
        assert "max(" in bounds[1].render_lower(["u1"])
        assert "min(" in bounds[1].render_upper(["u1"])


class TestPipelineObjects:
    def test_analysis_str_lists_arrays(self):
        prog = parse_program(
            "for i = 1 to 6 { B[i] = A[i] + A[i-1] }", name="tiny"
        )
        text = str(analyze_program(prog))
        assert "window[A]" in text and "window[B]" in text

    def test_full_report_row_consistency(self):
        prog = parse_program(
            "for i = 1 to 6 { B[i] = A[i] + A[i-2] }", name="tiny"
        )
        report = full_report(prog)
        name, default, unopt, opt = report.figure2_row
        assert name == "tiny"
        assert default == prog.default_memory
        assert opt <= unopt
