"""Run ledger + run context (ISSUE 7 tentpole): one correlated record
per analysis run.

Covers the context lifecycle and worker propagation
(:mod:`repro.obs.runctx`), record assembly and the store-backed
read/write sides (:mod:`repro.obs.ledger`), the flight recorder
(:mod:`repro.obs.flight`), and the acceptance criteria: a cold and a
warm ``repro optimize`` each seal exactly one record, ``diff_runs``
attributes the warm speedup to store/cache hits, and the record's
counters reconcile with the search journal — serial and parallel.
"""

from __future__ import annotations

import hashlib
import io
import json
import time

import pytest

from repro import obs
from repro.obs import flight, runctx
from repro.obs import ledger
from repro.obs.ledger import DigestTee, overall_hit_rate
from repro.reporting import diff_runs, render_run_diff
from repro.reporting.journal import reconcile
from repro.store import ResultStore
from repro.transform import journal
from repro.transform.search import (
    clear_exact_cache,
    search_best_transformation,
)


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
    monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
    runctx.end_run()
    obs.disable()
    journal.disable()
    clear_exact_cache()
    yield
    runctx.end_run()
    obs.disable()
    journal.disable()
    clear_exact_cache()


LOOP = (
    "for i = 1 to 20 {\n"
    "  for j = 1 to 12 {\n"
    "    A[2*i + 3*j] = A[2*i + 3*j - 5] + 1\n"
    "  }\n"
    "}\n"
)


def _loop_file(tmp_path):
    path = tmp_path / "nest.loop"
    path.write_text(LOOP, encoding="utf-8")
    return path


def _ledger_files(store_dir):
    return sorted((store_dir / "v1" / ledger.LEDGER_KIND).glob("*.json"))


# ----------------------------------------------------------------------
# run context
# ----------------------------------------------------------------------

class TestRunContext:
    def test_begin_end_lifecycle(self):
        assert runctx.current() is None
        ctx = runctx.begin_run("optimize", argv=["optimize", "x.loop"])
        assert runctx.current() is ctx
        assert runctx.current_run_id() == ctx.run_id
        assert runctx.end_run() is ctx
        assert runctx.current() is None
        assert runctx.current_run_id() is None

    def test_run_ids_are_sortable_and_unique(self):
        a = runctx.new_run_id(now=1_700_000_000.0)
        b = runctx.new_run_id(now=1_700_000_060.0)
        assert a.split("-")[:2] < b.split("-")[:2]
        assert runctx.new_run_id() != runctx.new_run_id()

    def test_note_input_keeps_first_signature(self):
        ctx = runctx.begin_run("analyze")
        runctx.note_input("sor", "sig-1")
        runctx.note_input("sor", "sig-other")
        runctx.note_input("matmult", "sig-2")
        assert ctx.inputs == {"sor": "sig-1", "matmult": "sig-2"}

    def test_annotate_accumulates_lists(self):
        ctx = runctx.begin_run("batch")
        runctx.annotate("timeouts", {"item": "#1"})
        runctx.annotate("timeouts", {"item": "#4"})
        assert ctx.extras["timeouts"] == [{"item": "#1"}, {"item": "#4"}]

    def test_module_helpers_are_noops_when_idle(self):
        runctx.note_input("sor", "sig")  # must not raise
        runctx.annotate("k", "v")
        assert runctx.current() is None

    def test_env_knobs_snapshot(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS_TEST", "3")
        monkeypatch.setenv("BENCH_KNOB_TEST", "x")
        monkeypatch.setenv("UNRELATED", "nope")
        knobs = runctx.env_knobs()
        assert knobs["REPRO_WORKERS_TEST"] == "3"
        assert knobs["BENCH_KNOB_TEST"] == "x"
        assert "UNRELATED" not in knobs

    def test_worker_state_roundtrip(self, tmp_path):
        parent = runctx.begin_run("batch", live_dir=tmp_path / "live")
        state = runctx.worker_state()
        assert state == {
            "run_id": parent.run_id,
            "command": "batch",
            "live_dir": str(tmp_path / "live"),
        }
        json.dumps(state)  # picklable/plain data
        runctx.end_run()
        runctx.restore_worker(state)
        child = runctx.current()
        assert child.run_id == parent.run_id
        assert child.live_path == parent.live_path
        # Workers never re-derive identity: cheap, deterministic.
        assert child.env == {} and child.git is None
        runctx.restore_worker(None)
        assert runctx.current() is None

    def test_worker_state_none_without_context(self):
        assert runctx.worker_state() is None


class TestObserverRunStamp:
    def test_summary_carries_run_id_under_context(self):
        ctx = runctx.begin_run("optimize")
        observer = obs.enable()
        obs.counter("x")
        assert observer.summary()["run"] == ctx.run_id

    def test_summary_unstamped_without_context(self):
        observer = obs.enable()
        obs.counter("x")
        assert "run" not in observer.summary()

    def test_journal_adopts_run_id(self):
        ctx = runctx.begin_run("explain")
        jr = journal.enable()
        assert jr.run_id == ctx.run_id


# ----------------------------------------------------------------------
# record assembly + sealing
# ----------------------------------------------------------------------

def _ctx(run_id="20250101-000000-aaaaaa", command="optimize", **kwargs):
    kwargs.setdefault("env", {})
    kwargs.setdefault("git", None)
    return runctx.RunContext(run_id=run_id, command=command, **kwargs)


class TestBuildRecord:
    def test_sections_engines_and_unconditional_caches(self):
        ctx = _ctx(argv=("optimize", "x.loop"))
        ctx.note_input("nest", "sig-abc")
        ctx.annotate("timeouts", {"item": "#1"})
        summary = {
            "counters": {
                "engine.fast.calls": 3,
                "engine.streaming.calls": 1,
                "search.cascade.pruned": 7,
                "store.misses": 2,
                "batch.items.ok": 4,
                "param.derived": 1,
            },
            "spans": {"pipeline.analyze": {"count": 1, "total_s": 0.5}},
        }
        record = ledger.build_record(ctx, summary, status=0,
                                     result_digest="d" * 64)
        assert record["schema"] == ledger.LEDGER_SCHEMA
        assert record["run"] == ctx.run_id
        assert record["engines"] == {"fast": 3, "streaming": 1}
        assert record["cascade"] == {"pruned": 7}
        assert record["store_io"] == {"misses": 2}
        assert record["batch"] == {"items.ok": 4}
        assert record["parametric"] == {"derived": 1}
        assert record["inputs"] == {"nest": "sig-abc"}
        assert record["extras"]["timeouts"] == [{"item": "#1"}]
        assert record["result_digest"] == "d" * 64
        # Satellite: cache stats always in the ledger, even though the
        # stderr rendering stays behind --trace / batch.
        assert isinstance(record["caches"], list)
        assert record["spans"] == summary["spans"]
        json.dumps(record)  # JSON-ready, no exotic types

    def test_empty_summary_still_builds(self):
        record = ledger.build_record(_ctx(), None, status=1)
        assert record["status"] == 1
        assert record["counters"] == {}
        assert record["engines"] == {}
        assert "caches" in record
        assert "result_digest" not in record

    def test_overall_hit_rate(self):
        record = {"counters": {
            "store.disk.hits": 3, "search.cache.hits": 1, "store.misses": 4,
        }}
        assert overall_hit_rate(record) == pytest.approx(0.5)
        assert overall_hit_rate({"counters": {}}) == 0.0


class TestSealAndLoad:
    def test_seal_without_sink_returns_none(self):
        assert ledger.seal_run(_ctx(), None, None) is None

    def test_seal_is_one_record_per_run(self, tmp_path):
        store = ResultStore(tmp_path)
        ctx = _ctx()
        assert ledger.seal_run(ctx, None, store)["run"] == ctx.run_id
        ledger.seal_run(ctx, None, store)  # re-seal overwrites
        assert len(_ledger_files(tmp_path)) == 1

    def test_resolve_sink_prefers_store(self, tmp_path):
        store = ResultStore(tmp_path)
        assert ledger.resolve_sink(store) is store

    def test_resolve_sink_env_fallback(self, tmp_path, monkeypatch):
        assert ledger.resolve_sink(None) is None
        monkeypatch.setenv(ledger.LEDGER_DIR_ENV, str(tmp_path / "runs"))
        sink = ledger.resolve_sink(None)
        assert isinstance(sink, ResultStore)
        assert str(sink.root) == str(tmp_path / "runs")

    def test_list_and_load(self, tmp_path):
        store = ResultStore(tmp_path)
        for idx, rid in enumerate(
            ["20250101-000000-aa1111", "20250101-000001-aa2222",
             "20250101-000002-bb3333"]
        ):
            ctx = _ctx(run_id=rid, started_unix=float(idx))
            ledger.seal_run(ctx, None, store)
        records = ledger.list_runs(store)
        assert [r["run"] for r in records] == [
            "20250101-000000-aa1111", "20250101-000001-aa2222",
            "20250101-000002-bb3333",
        ]
        # exact, unique prefix, last, last~N
        assert ledger.load_run(store, "20250101-000001-aa2222")["run"] == \
            "20250101-000001-aa2222"
        assert ledger.load_run(store, "20250101-000002")["run"] == \
            "20250101-000002-bb3333"
        assert ledger.load_run(store, "last")["run"] == \
            "20250101-000002-bb3333"
        assert ledger.load_run(store, "last~1")["run"] == \
            "20250101-000001-aa2222"
        assert ledger.load_run(store, "last~9") is None
        assert ledger.load_run(store, "nope") is None
        with pytest.raises(ValueError, match="ambiguous"):
            ledger.load_run(store, "20250101-00000")

    def test_list_runs_without_sink(self):
        assert ledger.list_runs(None) == []

    def test_corrupt_ledger_record_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        ledger.seal_run(_ctx(), None, store)
        (tmp_path / "v1" / ledger.LEDGER_KIND / "garbage.json").write_text(
            "{not json", encoding="utf-8"
        )
        assert len(ledger.list_runs(store)) == 1


class TestDigestTee:
    def test_digest_matches_sha256_and_passes_through(self):
        buffer = io.StringIO()
        tee = DigestTee(buffer)
        tee.write("hello ")
        tee.write("world\n")
        tee.flush()
        assert buffer.getvalue() == "hello world\n"
        assert tee.hexdigest() == \
            hashlib.sha256(b"hello world\n").hexdigest()
        assert tee.wrapped is buffer
        # Unknown attributes delegate to the wrapped stream.
        assert tee.getvalue() == "hello world\n"


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------

class TestFlightRecorder:
    def test_heartbeat_noop_without_context(self, tmp_path):
        flight.heartbeat("item_start", item="#0")  # must not raise
        assert flight.live_path() is None

    def test_heartbeat_appends_jsonl(self, tmp_path):
        ctx = runctx.begin_run("batch", live_dir=tmp_path / "live")
        flight.heartbeat("item_start", item="#0 mws sor", sig="abc")
        flight.heartbeat("item_done", item="#0 mws sor", elapsed_s=0.1)
        events = flight.read_heartbeats(ctx.live_path)
        assert [e["ev"] for e in events] == ["item_start", "item_done"]
        assert all(e["run"] == ctx.run_id for e in events)
        assert all("ts" in e and "pid" in e for e in events)

    def test_read_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text(
            '{"ev": "item_start", "pid": 1}\n{"ev": "item_do', encoding="utf-8"
        )
        events = flight.read_heartbeats(path)
        assert [e["ev"] for e in events] == ["item_start"]
        assert flight.read_heartbeats(tmp_path / "missing.jsonl") == []

    def test_heartbeat_thread_flushes_counter_snapshots(self, tmp_path):
        ctx = runctx.begin_run("batch", live_dir=tmp_path / "live")
        obs.enable()
        obs.counter("test.flight.work", 5)
        with flight.HeartbeatThread("#0 mws sor", sig="s", interval=0.01):
            time.sleep(0.08)
        events = [
            e for e in flight.read_heartbeats(ctx.live_path)
            if e["ev"] == "progress"
        ]
        assert events
        assert events[-1]["item"] == "#0 mws sor"
        assert events[-1]["counters"]["test.flight.work"] == 5
        assert events[-1]["elapsed_s"] > 0

    def test_progress_summary_folds_stream(self):
        events = [
            {"ev": "item_start", "pid": 1, "item": "#0", "ts": 1.0},
            {"ev": "progress", "pid": 1, "item": "#0", "elapsed_s": 2.0,
             "rate": 10.0, "ts": 3.0},
            {"ev": "item_done", "pid": 1, "item": "#0", "ts": 4.0},
            {"ev": "batch_progress", "done": 1, "total": 3, "eta_s": 8.0,
             "pid": 0, "ts": 4.0},
            {"ev": "run_end", "pid": 0, "status": 0, "ts": 5.0},
        ]
        summary = flight.progress_summary(events)
        assert summary["ended"] is True
        assert summary["batch"] == {"done": 1, "total": 3, "eta_s": 8.0,
                                    "ts": 4.0}
        assert summary["pids"][1]["item"] is None
        assert "item_done" in summary["pids"][1]["last"]
        text = flight.render_progress("run-x", summary)
        assert "batch: 1/3" in text
        assert "run ended" in text

    def test_thread_stops_when_body_raises(self, tmp_path):
        # ISSUE 10 S2: an exception inside the guarded block must stop
        # the daemon thread — not leave it appending heartbeats for an
        # item that is already dead.
        ctx = runctx.begin_run("batch", live_dir=tmp_path / "live")
        hb = flight.HeartbeatThread("#0 mws sor", interval=0.01)
        with pytest.raises(RuntimeError, match="boom"):
            with hb:
                time.sleep(0.05)
                raise RuntimeError("boom")
        assert hb._thread is None
        before = len(flight.read_heartbeats(ctx.live_path))
        time.sleep(0.05)
        assert len(flight.read_heartbeats(ctx.live_path)) == before

    def test_stop_is_idempotent(self, tmp_path):
        runctx.begin_run("batch", live_dir=tmp_path / "live")
        hb = flight.HeartbeatThread("#0", interval=0.01).start()
        hb.stop()
        hb.stop()  # second stop is a no-op, not an error
        assert hb._thread is None

    def test_no_heartbeats_after_run_seal(self, tmp_path):
        # A thread that outlives its run (service keeps the process
        # alive) must stop beating once the run context is gone.
        ctx = runctx.begin_run("batch", live_dir=tmp_path / "live")
        hb = flight.HeartbeatThread("#0", interval=0.02).start()
        time.sleep(0.06)
        live = ctx.live_path
        runctx.end_run()
        # Grace period: any in-flight beat finishes, then the thread
        # observes the dead context and exits on its own.
        time.sleep(0.06)
        count = len(flight.read_heartbeats(live))
        time.sleep(0.08)
        assert len(flight.read_heartbeats(live)) == count
        hb.stop()

    def test_heartbeat_interval_env(self, monkeypatch):
        assert flight.heartbeat_interval() == flight.DEFAULT_HEARTBEAT_S
        monkeypatch.setenv(flight.HEARTBEAT_ENV, "0.25")
        assert flight.heartbeat_interval() == 0.25
        monkeypatch.setenv(flight.HEARTBEAT_ENV, "nope")
        with pytest.raises(ValueError, match="number of seconds"):
            flight.heartbeat_interval()
        monkeypatch.setenv(flight.HEARTBEAT_ENV, "-1")
        with pytest.raises(ValueError, match="> 0"):
            flight.heartbeat_interval()


# ----------------------------------------------------------------------
# acceptance: cold/warm CLI runs, one record each, diff attribution
# ----------------------------------------------------------------------

class TestColdWarmAcceptance:
    def _run(self, store_dir, loop, capsys, extra=()):
        from repro.cli import main

        code = main([*extra, "--store", str(store_dir), "optimize",
                     str(loop)])
        captured = capsys.readouterr()
        assert code == 0
        return captured.out

    @pytest.mark.parametrize("extra", [(), ("--workers", "2")],
                             ids=["serial", "workers2"])
    def test_one_record_per_run_and_cache_attribution(
        self, tmp_path, capsys, extra
    ):
        loop = _loop_file(tmp_path)
        store_dir = tmp_path / "store"
        cold_out = self._run(store_dir, loop, capsys, extra)
        assert len(_ledger_files(store_dir)) == 1
        clear_exact_cache()
        warm_out = self._run(store_dir, loop, capsys, extra)
        assert len(_ledger_files(store_dir)) == 2
        assert warm_out == cold_out  # store-served answer, same bytes

        store = ResultStore(store_dir)
        cold, warm = ledger.list_runs(store)
        assert cold["run"] != warm["run"]
        for record in (cold, warm):
            assert record["schema"] == ledger.LEDGER_SCHEMA
            assert record["command"] == "optimize"
            assert record["status"] == 0
            assert record["inputs"]  # pipeline noted the program
            assert record["caches"]  # unconditional cache stats
        # Identical printed answers -> identical stdout digests.
        assert cold["result_digest"] == warm["result_digest"]
        # Cold did engine work; warm was served entirely from the store.
        assert sum(cold["engines"].values()) > 0
        assert sum(warm.get("engines", {}).values()) == 0

        diff = diff_runs(cold, warm)
        assert diff.code_delta is None
        assert diff.knob_delta == {}
        assert diff.input_delta == {}
        assert diff.digest_match is True
        assert diff.hit_rate_delta > 0
        assert not diff.engine_switch
        assert "attributed to store/cache hits" in diff.attribution
        rendered = render_run_diff(diff)
        assert "verdict" in rendered
        assert "identical output digest" in rendered

    def test_env_sink_for_storeless_runs(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        loop = _loop_file(tmp_path)
        ledger_dir = tmp_path / "runs"
        monkeypatch.setenv(ledger.LEDGER_DIR_ENV, str(ledger_dir))
        assert main(["analyze", str(loop)]) == 0
        capsys.readouterr()
        records = ledger.list_runs(ResultStore(ledger_dir))
        assert len(records) == 1
        assert records[0]["command"] == "analyze"
        # The knob that routed the record is itself in the record.
        assert records[0]["env"][ledger.LEDGER_DIR_ENV] == str(ledger_dir)

    def test_read_side_commands_seal_nothing(self, tmp_path, capsys):
        from repro.cli import main

        loop = _loop_file(tmp_path)
        store_dir = tmp_path / "store"
        self._run(store_dir, loop, capsys)
        assert main(["--store", str(store_dir), "runs", "list"]) == 0
        assert main(["--store", str(store_dir), "runs", "show", "last"]) == 0
        capsys.readouterr()
        # Reading the ledger must not grow the ledger.
        assert len(_ledger_files(store_dir)) == 1

    def test_failed_run_seals_with_nonzero_status(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = tmp_path / "store"
        code = main(["--store", str(store_dir), "optimize",
                     str(tmp_path / "missing.loop")])
        capsys.readouterr()
        assert code == 1
        records = ledger.list_runs(ResultStore(store_dir))
        assert len(records) == 1
        assert records[0]["status"] == 1


# ----------------------------------------------------------------------
# acceptance: record counters reconcile with the journal
# ----------------------------------------------------------------------

class TestLedgerJournalReconciliation:
    @pytest.mark.parametrize("workers", [0, 2],
                             ids=["serial", "workers2"])
    def test_record_counters_reconcile(self, workers):
        from repro.ir import parse_program

        program = parse_program(LOOP)
        ctx = runctx.begin_run("explain", config={"workers": workers})
        observer = obs.enable()
        jr = journal.enable()
        search_best_transformation(program, "A", workers=workers)
        journal.disable()
        summary = observer.summary()
        runctx.end_run()
        record = ledger.build_record(ctx, summary)
        assert record["run"] == jr.run_id == summary["run"]
        rows = reconcile(jr, record["counters"])
        assert rows
        for label, jcount, ccount in rows:
            assert jcount == ccount, label
        # The searched program's engine calls surface in the record.
        assert sum(record["engines"].values()) > 0


class TestStoreRunStamp:
    def test_store_records_carry_run_provenance(self, tmp_path):
        store = ResultStore(tmp_path)
        ctx = runctx.begin_run("optimize")
        store.put("exact", {"k": 1}, 42)
        runctx.end_run()
        store.put("exact", {"k": 2}, 43)
        paths = sorted((tmp_path / "v1" / "exact").glob("*.json"))
        stamped = [
            json.loads(p.read_text(encoding="utf-8")).get("run")
            for p in paths
        ]
        assert sorted(stamped, key=str) == sorted(
            [ctx.run_id, None], key=str
        )
        # Provenance only: reads are unaffected by the stamp.
        assert store.get("exact", {"k": 1}) == 42
