"""Tests for Section 3 estimators: paper examples + oracle properties."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.estimation import (
    distinct_accesses_same_rank,
    distinct_accesses_single_ref,
    estimate_distinct_accesses,
    estimate_program_memory,
    exact_distinct_accesses,
    exact_program_footprint,
    nonuniform_bounds,
    reuse_from_distances,
)
from repro.ir import ArrayRef, NestBuilder, parse_program


def build_uniform_2ref(offset1, offset2, n1=8, n2=8):
    ident = [[1, 0], [0, 1]]
    return (
        NestBuilder()
        .loop("i", 1, n1)
        .loop("j", 1, n2)
        .statement("S1", write=("A", ident, list(offset1)))
        .statement("S2", write=("B", ident, [0, 0]), reads=[("A", ident, list(offset2))])
        .build()
    )


class TestReuseFormula:
    def test_paper_example3_reuse(self):
        assert reuse_from_distances((10, 10), [(1, 0), (0, 1), (1, 1)]) == 261

    def test_paper_example1_area(self):
        # Figure 1: dependence (3, 2) on a 10x10 nest -> (10-3)(10-2) = 56.
        assert reuse_from_distances((10, 10), [(3, 2)]) == 56

    def test_sign_invariance(self):
        assert reuse_from_distances((10, 10), [(3, -2)]) == reuse_from_distances(
            (10, 10), [(3, 2)]
        )

    def test_clamping(self):
        assert reuse_from_distances((4, 4), [(5, 0)]) == 0

    def test_arity_check(self):
        with pytest.raises(ValueError):
            reuse_from_distances((4, 4), [(1,)])


class TestSameRank:
    def test_paper_example2(self):
        prog = parse_program(
            "for i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j+2] } }"
        )
        est = distinct_accesses_same_rank(prog, "A")
        assert est.exact
        assert est.lower == 2 * 100 - (10 - 1) * (10 - 2) == 128
        assert exact_distinct_accesses(prog, "A") == 128

    def test_paper_example3(self):
        prog = parse_program(
            """
            for i = 1 to 10 {
              for j = 1 to 10 {
                Z[i][j] = A[i][j] + A[i-1][j] + A[i][j-1] + A[i-1][j-1]
              }
            }
            """
        )
        est = distinct_accesses_same_rank(prog, "A")
        assert est.upper == 139  # the paper's formula value
        assert not est.exact  # r > 2: the formula overcounts
        truth = exact_distinct_accesses(prog, "A")
        assert truth == 121
        assert est.lower <= truth <= est.upper

    def test_single_ref(self):
        prog = parse_program("for i = 1 to 6 { for j = 1 to 7 { A[i][j] = 1 } }")
        est = distinct_accesses_same_rank(prog, "A")
        assert est.lower == est.upper == 42

    def test_rejects_singular(self):
        prog = parse_program(
            "for i = 1 to 6 { for j = 1 to 6 { A[i][i] = A[i][i-1] } }"
        )
        with pytest.raises(ValueError):
            distinct_accesses_same_rank(prog, "A")

    @given(
        st.integers(-3, 3), st.integers(-3, 3),
        st.integers(3, 9), st.integers(3, 9),
    )
    @settings(max_examples=80, deadline=None)
    def test_two_refs_exact_property(self, di, dj, n1, n2):
        # For exactly two identity-access refs, the formula is exact.
        assume((di, dj) != (0, 0))
        prog = build_uniform_2ref((0, 0), (di, dj), n1, n2)
        est = distinct_accesses_same_rank(prog, "A")
        assert est.exact
        assert est.lower == exact_distinct_accesses(prog, "A")


class TestSingleRefLowerRank:
    def test_paper_example4(self):
        prog = parse_program(
            "for i = 1 to 20 { for j = 1 to 10 { B[0] = A[2*i + 5*j + 1] } }"
        )
        est = distinct_accesses_single_ref(prog.refs_to("A")[0], prog.nest)
        assert est.lower == 80 and est.exact
        assert exact_distinct_accesses(prog, "A") == 80

    def test_paper_example5(self):
        prog = parse_program(
            """
            for i = 1 to 10 {
              for j = 1 to 20 {
                for k = 1 to 30 {
                  B[0] = A[3*i + k][j + k]
                }
              }
            }
            """
        )
        est = distinct_accesses_single_ref(prog.refs_to("A")[0], prog.nest)
        assert est.lower == 1869 and est.exact
        assert exact_distinct_accesses(prog, "A") == 1869

    @given(st.integers(1, 5), st.integers(-5, 5), st.integers(4, 12), st.integers(4, 12))
    @settings(max_examples=80, deadline=None)
    def test_1d_in_2d_matches_oracle(self, a, b, n1, n2):
        # A[a*i + b*j]: the kernel-based count must equal enumeration when
        # the reuse vector fits in the box (the paper's assumption).
        assume(b != 0)
        import math

        g = math.gcd(a, abs(b))
        v = (abs(b) // g, a // g)  # primitive kernel vector magnitudes
        assume(v[0] < n1 and v[1] < n2)
        prog = (
            NestBuilder()
            .loop("i", 1, n1)
            .loop("j", 1, n2)
            .use("S1", ("A", [[a, b]], [0]))
            .build()
        )
        est = distinct_accesses_single_ref(prog.refs_to("A")[0], prog.nest)
        assert est.lower == exact_distinct_accesses(prog, "A")


class TestNonUniform:
    def test_paper_example6(self):
        prog = parse_program(
            """
            for i = 1 to 20 {
              for j = 1 to 20 {
                S1: A[3*i + 7*j - 10] = 0
                S2: B[0] = A[4*i - 3*j + 60]
              }
            }
            """
        )
        b = nonuniform_bounds(prog, "A")
        assert (b.lb_min, b.ub_max) == (0, 190)
        assert (b.lower, b.upper) == (179, 191)
        truth = exact_distinct_accesses(prog, "A")
        assert truth == 182  # the paper prints 181; enumeration says 182
        assert b.contains(truth)

    def test_dispatcher_uses_bounds(self):
        prog = parse_program(
            """
            for i = 1 to 20 {
              for j = 1 to 20 {
                S1: A[3*i + 7*j - 10] = A[4*i - 3*j + 60]
              }
            }
            """
        )
        est = estimate_distinct_accesses(prog, "A")
        assert not est.exact
        assert est.method == "non-uniform bounds"
        assert est.lower <= exact_distinct_accesses(prog, "A") <= est.upper

    def test_rejects_2d_nonuniform(self):
        prog = parse_program(
            "for i = 1 to 5 { for j = 1 to 5 { A[i][j] = A[j][i] } }"
        )
        with pytest.raises(ValueError):
            nonuniform_bounds(prog, "A")

    @given(
        st.integers(1, 7), st.integers(-7, 7).filter(lambda v: v != 0),
        st.integers(1, 7), st.integers(-7, 7).filter(lambda v: v != 0),
        st.integers(-30, 30), st.integers(-30, 60),
    )
    @settings(max_examples=80, deadline=None)
    def test_bounds_bracket_oracle(self, a1, b1, a2, b2, c1, c2):
        # Covers coprime AND non-coprime coefficients, overlapping AND
        # disjoint value ranges (the component generalization).
        prog = (
            NestBuilder()
            .loop("i", 1, 15)
            .loop("j", 1, 15)
            .statement("S1", write=("A", [[a1, b1]], [c1]))
            .statement("S2", write=("A", [[a2, b2]], [c2]))
            .build()
        )
        from repro.linalg import sylvester_count

        bounds = nonuniform_bounds(prog, "A")
        truth = exact_distinct_accesses(prog, "A")
        assert truth <= bounds.upper
        # The paper's "lower bound" is a close heuristic, not a guarantee:
        # it corrects only the two global extremes, so interior gaps where
        # one reference's coverage hands over to the other's can push the
        # truth slightly below it.  The slack is bounded by the total
        # Sylvester gap mass of all references.
        slack = sylvester_count(a1, b1) + sylvester_count(a2, b2)
        assert bounds.lower <= truth + slack


class TestDispatcherAndMemory:
    def test_injective_multi_offset(self):
        prog = parse_program(
            "for i = 1 to 9 { for j = 1 to 9 { A[i][j] = A[i-1][j] } }"
        )
        est = estimate_distinct_accesses(prog, "A")
        assert est.exact
        assert est.lower == exact_distinct_accesses(prog, "A")

    def test_multiref_1d_now_exact(self):
        # Multiple refs AND a kernel, 1-D in 2-D: the exact-union
        # extension (the case the paper omits) takes over.
        prog = parse_program(
            "for i = 1 to 12 { for j = 1 to 12 { X[2*i + 5*j + 1] = X[2*i + 5*j + 5] } }"
        )
        est = estimate_distinct_accesses(prog, "X")
        truth = exact_distinct_accesses(prog, "X")
        assert est.exact
        assert est.lower == truth

    def test_mixed_case_2d_array_bounds_hold(self):
        # A rank-2 kernel case outside the exact-union machinery falls
        # back to the composed estimate: bounds must bracket from above.
        prog = parse_program(
            """
            for i = 1 to 8 {
              for j = 1 to 8 {
                for k = 1 to 8 {
                  X[i + k][j] = X[i + k][j] + X[i + k - 2][j]
                }
              }
            }
            """
        )
        est = estimate_distinct_accesses(prog, "X")
        truth = exact_distinct_accesses(prog, "X")
        assert truth <= est.upper
        assert est.lower <= est.upper

    def test_program_memory_report(self):
        prog = parse_program(
            "for i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j+2] } }",
            name="example2",
        )
        report = estimate_program_memory(prog)
        assert report.footprint_total == 128
        assert report.declared_total == prog.default_memory
        assert report.all_exact

    def test_exact_program_footprint(self):
        prog = parse_program(
            "for i = 1 to 10 { for j = 1 to 10 { A[i][j] = B[i][j] } }"
        )
        foot = exact_program_footprint(prog)
        assert foot == {"A": 100, "B": 100}

    def test_unknown_array_raises(self):
        prog = parse_program("for i = 1 to 4 { A[i] = 1 }")
        with pytest.raises(KeyError):
            estimate_distinct_accesses(prog, "Z")
        with pytest.raises(KeyError):
            exact_distinct_accesses(prog, "Z")
