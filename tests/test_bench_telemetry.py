"""Bench-telemetry pipeline: artifact writer, bench-compare engine, CLI,
and the end-to-end guarantee that the figure2 bench emits an artifact
whose MWS numbers match the golden fixture."""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.reporting import (
    compare_artifacts,
    metric_direction,
    render_comparison,
)

ROOT = Path(__file__).resolve().parent.parent
GOLDEN = json.loads((ROOT / "tests" / "fixtures" / "figure2_golden.json").read_text())
BASELINE_PATH = ROOT / "benchmarks" / "baselines" / "BENCH_figure2.json"


def _load_bench_telemetry():
    spec = importlib.util.spec_from_file_location(
        "bench_telemetry_module", ROOT / "benchmarks" / "telemetry.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _artifact(metrics, name="demo"):
    return {"bench": name, "schema": 1, "metrics": metrics}


class TestArtifactWriter:
    def test_build_artifact_shape(self):
        telemetry = _load_bench_telemetry()
        artifact = telemetry.build_artifact(
            "demo",
            metrics={"sor.mws_opt": 64},
            wall_s={"test_row[sor]": 0.5},
            counters={"search.cache.hits": 3},
        )
        assert artifact["bench"] == "demo"
        assert artifact["schema"] == telemetry.SCHEMA_VERSION
        assert artifact["metrics"] == {"sor.mws_opt": 64}
        assert artifact["wall_s"] == {"test_row[sor]": 0.5}
        assert artifact["counters"] == {"search.cache.hits": 3}
        assert "python" in artifact["host"]
        assert artifact["created_unix"] > 0

    def test_write_artifact_names_file_after_bench(self, tmp_path):
        telemetry = _load_bench_telemetry()
        artifact = telemetry.build_artifact("demo", metrics={"x": 1})
        path = telemetry.write_artifact(artifact, tmp_path)
        assert path == tmp_path / "BENCH_demo.json"
        assert json.loads(path.read_text())["metrics"] == {"x": 1}

    def test_artifact_dir_env_override(self, tmp_path, monkeypatch):
        telemetry = _load_bench_telemetry()
        monkeypatch.setenv(telemetry.ARTIFACT_DIR_ENV, str(tmp_path / "out"))
        assert telemetry.artifact_dir() == tmp_path / "out"
        monkeypatch.delenv(telemetry.ARTIFACT_DIR_ENV)
        assert telemetry.artifact_dir() == telemetry.DEFAULT_ARTIFACT_DIR


class TestCompareEngine:
    def test_direction_inference(self):
        assert metric_direction("sor.opt_reduction") == 1
        assert metric_direction("warm_speedup") == 1
        assert metric_direction("search.cache.hits") == 1
        assert metric_direction("sor.mws_opt") == -1
        assert metric_direction("serial_s") == -1

    def test_identical_artifacts_ok(self):
        a = _artifact({"sor.mws_opt": 64, "sor.opt_reduction": 94.5})
        comparison = compare_artifacts(a, a)
        assert comparison.ok
        assert not comparison.regressions

    def test_lower_is_better_regression(self):
        old = _artifact({"sor.mws_opt": 64})
        new = _artifact({"sor.mws_opt": 128})
        comparison = compare_artifacts(old, new)
        assert not comparison.ok
        assert comparison.regressions[0].key == "sor.mws_opt"

    def test_higher_is_better_regression(self):
        old = _artifact({"sor.opt_reduction": 94.5})
        new = _artifact({"sor.opt_reduction": 50.0})
        comparison = compare_artifacts(old, new)
        assert not comparison.ok

    def test_improvement_is_not_a_regression(self):
        old = _artifact({"sor.mws_opt": 128, "sor.opt_reduction": 50.0})
        new = _artifact({"sor.mws_opt": 64, "sor.opt_reduction": 94.5})
        assert compare_artifacts(old, new).ok

    def test_threshold_gives_slack(self):
        old = _artifact({"sor.mws_opt": 100})
        new = _artifact({"sor.mws_opt": 104})
        assert compare_artifacts(old, new, threshold=0.05).ok
        assert not compare_artifacts(old, new, threshold=0.01).ok

    def test_missing_metric_fails(self):
        old = _artifact({"sor.mws_opt": 64, "sor.default": 1156})
        new = _artifact({"sor.mws_opt": 64})
        comparison = compare_artifacts(old, new)
        assert comparison.missing == ("sor.default",)
        assert not comparison.ok

    def test_added_metric_is_fine(self):
        old = _artifact({"sor.mws_opt": 64})
        new = _artifact({"sor.mws_opt": 64, "sor.default": 1156})
        comparison = compare_artifacts(old, new)
        assert comparison.added == ("sor.default",)
        assert comparison.ok

    def test_non_numeric_and_bool_metrics_skipped(self):
        old = _artifact({"label": "sor", "flag": True, "sor.mws_opt": 64})
        new = _artifact({"label": "other", "flag": False, "sor.mws_opt": 64})
        comparison = compare_artifacts(old, new)
        assert [d.key for d in comparison.deltas] == ["sor.mws_opt"]
        assert comparison.ok

    def test_render_marks_regressions(self):
        old = _artifact({"sor.mws_opt": 64})
        new = _artifact({"sor.mws_opt": 128})
        text = render_comparison(compare_artifacts(old, new))
        assert "REGRESSION" in text
        assert "REGRESSIONS DETECTED" in text
        ok_text = render_comparison(compare_artifacts(old, old))
        assert "result: OK" in ok_text


class TestBenchCompareCli:
    def _write(self, tmp_path, name, metrics):
        path = tmp_path / name
        path.write_text(json.dumps(_artifact(metrics)))
        return str(path)

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        from repro.cli import main

        old = self._write(tmp_path, "old.json", {"sor.mws_opt": 64})
        new = self._write(tmp_path, "new.json", {"sor.mws_opt": 64})
        assert main(["bench-compare", old, new]) == 0
        assert "result: OK" in capsys.readouterr().out

    def test_exit_nonzero_on_injected_regression(self, tmp_path, capsys):
        from repro.cli import main

        old = self._write(tmp_path, "old.json", {"sor.mws_opt": 64})
        new = self._write(tmp_path, "new.json", {"sor.mws_opt": 128})
        assert main(["bench-compare", old, new]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_threshold_flag(self, tmp_path):
        from repro.cli import main

        old = self._write(tmp_path, "old.json", {"sor.mws_opt": 100})
        new = self._write(tmp_path, "new.json", {"sor.mws_opt": 104})
        assert main(["bench-compare", old, new]) == 0
        assert main(["bench-compare", "--threshold", "0.01", old, new]) == 1

    def test_malformed_artifact_errors(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        good = self._write(tmp_path, "good.json", {})
        assert main(["bench-compare", str(bad), good]) == 1
        assert "error:" in capsys.readouterr().err


class TestBaselineFixture:
    def test_baseline_matches_golden_mws(self):
        """The checked-in compare baseline must agree with the golden
        figure2 fixture kernel by kernel."""
        baseline = json.loads(BASELINE_PATH.read_text())
        metrics = baseline["metrics"]
        for kernel, values in GOLDEN.items():
            for field in ("default", "mws_unopt", "mws_opt"):
                assert metrics[f"{kernel}.{field}"] == values[field], (
                    kernel,
                    field,
                )


class TestEndToEndArtifact:
    def test_figure2_bench_emits_golden_artifact(self, tmp_path):
        """Run the figure2 kernel-row benches in a subprocess and check
        the emitted BENCH_figure2.json against the golden fixture."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        env["BENCH_ARTIFACT_DIR"] = str(tmp_path)
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                str(ROOT / "benchmarks" / "bench_figure2_table.py"),
                "-k",
                "kernel_row",
                "-q",
                "-p",
                "no:cacheprovider",
            ],
            cwd=ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        artifact = json.loads((tmp_path / "BENCH_figure2.json").read_text())
        assert artifact["bench"] == "figure2"
        for kernel, values in GOLDEN.items():
            for field in ("default", "mws_unopt", "mws_opt"):
                assert artifact["metrics"][f"{kernel}.{field}"] == values[field]
        # Wall-clock and counter totals came along.
        assert artifact["wall_s"]
        assert artifact["counters"].get("search.candidates.examined", 0) > 0
