"""Tests for the oracle registry itself: shape, helper soundness, and a
green sweep of every oracle over a deterministic seed range."""

import pytest

from repro.check import ORACLES, all_oracles, get_oracle, oracle_names
from repro.check.oracles import (
    Oracle,
    _parametric_sample,
    extend_outermost,
    register,
    relabel_signed_permutation,
    translate_offsets,
)
from repro.estimation import exact_distinct_accesses
from repro.ir import parse_program
from repro.ir.generate import GeneratorConfig, random_program
from repro.window import max_window_size

from tests.conftest import assert_oracle, fuzz_seeds

EXAMPLE = parse_program(
    "for i = 1 to 4 { for j = 2 to 5 { A[i + j] = A[i + j + 1] + B[i][j] } }",
    name="example",
)


class TestRegistryShape:
    def test_minimum_oracle_counts(self):
        """The acceptance floor: >= 10 oracles, >= 6 cross, >= 4 metamorphic."""
        oracles = all_oracles()
        assert len(oracles) >= 10
        assert sum(1 for o in oracles if o.kind == "cross") >= 6
        assert sum(1 for o in oracles if o.kind == "metamorphic") >= 4

    def test_parametric_tier_registered(self):
        names = oracle_names()
        assert "parametric-mws-conformance" in names
        assert "parametric-distinct-conformance" in names

    def test_every_oracle_documents_its_paper_argument(self):
        for oracle in all_oracles():
            assert oracle.paper, oracle.name
            assert oracle.name
            assert oracle.kind in ("cross", "metamorphic")

    def test_names_are_unique_and_ordered(self):
        names = oracle_names()
        assert len(names) == len(set(names))
        assert list(names) == [o.name for o in all_oracles()]

    def test_get_oracle_unknown_name(self):
        with pytest.raises(KeyError, match="registered:"):
            get_oracle("no-such-oracle")

    def test_register_rejects_bad_classes(self):
        class Nameless(Oracle):
            name = ""

        with pytest.raises(ValueError, match="no name"):
            register(Nameless)

        class BadKind(Oracle):
            name = "bad-kind-oracle"
            kind = "vibes"

        with pytest.raises(ValueError, match="unknown kind"):
            register(BadKind)

        duplicate = type(
            "Duplicate", (Oracle,), {"name": next(iter(ORACLES)), "kind": "cross"}
        )
        with pytest.raises(ValueError, match="duplicate"):
            register(duplicate)

    def test_run_is_generate_then_check(self):
        oracle = get_oracle("estimate-brackets-exact")
        assert oracle.run(3) == oracle.check(oracle.generate(3), 3)


class TestRewritingHelpers:
    def test_relabel_identity_is_rename_only(self):
        relabeled = relabel_signed_permutation(EXAMPLE, (0, 1), (1, 1))
        assert [l.index for l in relabeled.nest.loops] == ["u1", "u2"]
        for array in EXAMPLE.arrays:
            assert exact_distinct_accesses(EXAMPLE, array) == exact_distinct_accesses(
                relabeled, array
            )

    def test_relabel_reversal_preserves_touched_set(self):
        relabeled = relabel_signed_permutation(EXAMPLE, (1, 0), (-1, 1))
        for array in EXAMPLE.arrays:
            original = {
                ref.element(p)
                for p in EXAMPLE.nest.iterate()
                for ref in EXAMPLE.refs_to(array)
            }
            mapped = {
                ref.element(p)
                for p in relabeled.nest.iterate()
                for ref in relabeled.refs_to(array)
            }
            assert original == mapped

    def test_relabel_box_is_permuted_rectangle(self):
        relabeled = relabel_signed_permutation(EXAMPLE, (1, 0), (-1, -1))
        assert [(l.lower, l.upper) for l in relabeled.nest.loops] == [(2, 5), (1, 4)]

    def test_relabel_rejects_bad_permutation(self):
        with pytest.raises(ValueError):
            relabel_signed_permutation(EXAMPLE, (0, 0), (1, 1))
        with pytest.raises(ValueError):
            relabel_signed_permutation(EXAMPLE, (0, 1), (1,))

    def test_translate_offsets_shifts_only_named_arrays(self):
        shifted = translate_offsets(EXAMPLE, {"A": (3,)})
        for stmt0, stmt1 in zip(EXAMPLE.statements, shifted.statements):
            for r0, r1 in zip(stmt0.references, stmt1.references):
                if r0.array == "A":
                    assert r1.offset == tuple(o + 3 for o in r0.offset)
                else:
                    assert r1.offset == r0.offset
        assert max_window_size(EXAMPLE, "A") == max_window_size(shifted, "A")

    def test_extend_outermost_prefix(self):
        extended = extend_outermost(EXAMPLE, 2)
        assert extended.nest.loops[0].upper == EXAMPLE.nest.loops[0].upper + 2
        assert extended.nest.loops[1] == EXAMPLE.nest.loops[1]
        for array in EXAMPLE.arrays:
            assert max_window_size(extended, array) >= max_window_size(EXAMPLE, array)

    def test_extend_outermost_rejects_negative(self):
        with pytest.raises(ValueError):
            extend_outermost(EXAMPLE, -1)


def _sweep_cases():
    # Modest per-oracle seed counts: the full 500-seed sweep is the CLI
    # gate (`repro check --seeds 500`); this keeps the suite green and
    # every oracle exercised on every pytest run.
    import zlib

    for oracle in all_oracles():
        if "3d" in oracle.name:
            budget = 4
        elif oracle.name.startswith("parametric"):
            budget = 6  # each case derives closed forms: heavier per seed
        else:
            budget = 12
        # crc32, not hash(): the salt must survive PYTHONHASHSEED.
        for seed in fuzz_seeds(budget, salt=zlib.crc32(oracle.name.encode()) % 1000):
            yield pytest.param(oracle.name, seed, id=f"{oracle.name}-{seed}")


@pytest.mark.parametrize("name,seed", list(_sweep_cases()))
def test_oracle_sweep(name, seed, tmp_path):
    assert_oracle(name, seed, tmp_path)


class TestParametricOracles:
    def test_sample_floor_and_determinism(self):
        """The acceptance bar: >= 5 in-domain vectors, pure in (seed, domain)."""
        points = _parametric_sample((3, 5), seed=7)
        assert points == _parametric_sample((3, 5), seed=7)
        assert len(points) >= 5
        assert all(a >= 3 and b >= 5 for a, b in points)

    def test_sample_includes_regime_exposing_corners(self):
        points = _parametric_sample((3, 5), seed=0, spread=6)
        assert (9, 11) in points  # high corner
        assert (3, 11) in points and (9, 5) in points  # per-axis minima

    def test_example8_pin_passes(self):
        """The paper's Example 8, where eq. (2) over-estimates: the
        derived form must track the engines, natively and transformed."""
        oracle = get_oracle("parametric-mws-conformance")
        program = parse_program(
            "for i1 = 1 to 25 { for i2 = 1 to 10 { "
            "A0[2*i1 + 5*i2] = A0[2*i1 + 5*i2] } }",
            name="ex8",
        )
        assert oracle.check(program, 0) is None

    def test_distinct_oracle_flags_wrong_expression(self, monkeypatch):
        """The oracle is live: a deliberately off-by-one expression in an
        otherwise-valid ParametricExpr must produce a violation."""
        import repro.estimation.symbolic as symbolic
        from repro.estimation.parametric import ParametricExpr
        from repro.estimation.symbolic import trip_symbols

        syms = trip_symbols(2)
        wrong = ParametricExpr(
            "distinct", "A0", syms[0] * syms[1] + 1, syms, (2, 2),
            "closed-form", 9,
        )
        monkeypatch.setattr(
            symbolic, "derive_parametric_distinct",
            lambda program, array, seed=0: wrong,
        )
        oracle = get_oracle("parametric-distinct-conformance")
        program = parse_program(
            "for i1 = 1 to 4 { for i2 = 1 to 4 { A0[i1][i2] = 0 } }"
        )
        violation = oracle.check(program, 0)
        assert violation is not None
        assert "enumeration counts" in violation.detail


class TestOracleSelfChecks:
    def test_violation_str_names_oracle(self):
        oracle = get_oracle("engines-agree-2d")
        violation = oracle.fail("engines disagree", EXAMPLE)
        assert str(violation).startswith("[engines-agree-2d]")
        assert "for i = 1 to 4" in violation.detail

    def test_checks_are_deterministic(self):
        """The shrinker contract: check(program, seed) is a pure function."""
        for oracle in all_oracles():
            program = oracle.generate(5)
            assert oracle.check(program, 5) == oracle.check(program, 5)

    def test_generator_configs_valid(self):
        for oracle in all_oracles():
            assert isinstance(oracle.config, GeneratorConfig)
            program = oracle.generate(0)
            assert program.nest.total_iterations > 0
