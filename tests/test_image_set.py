"""Tests for the exact 1-D affine image structure and union counting —
the multiple-reference extension of Section 3.2."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation import (
    distinct_accesses_multiref_1d,
    exact_distinct_accesses,
    supports_exact_multiref,
)
from repro.ir import NestBuilder, parse_program
from repro.polyhedral.image_set import AffineImage1D, affine_image_1d, union_count


class TestAffineImage:
    def test_paper_example6_f1(self):
        img = affine_image_1d(3, 7, 20, 20)
        assert img.count == 179
        assert img.lo == 10 and img.hi == 200

    def test_example8_access(self):
        img = affine_image_1d(2, 5, 25, 10)
        assert img.count == 90

    def test_degenerate_zero(self):
        assert affine_image_1d(0, 0, 4, 4).count == 1
        assert affine_image_1d(0, 0, 0, 4).count == 0

    def test_single_coefficient(self):
        img = affine_image_1d(3, 0, 5, 9)
        assert img.count == 5
        assert img.step == 3

    def test_gcd_step(self):
        img = affine_image_1d(4, 6, 10, 10)
        assert img.step == 2
        assert all(v % 2 == 0 for v in img.values())

    def test_shifted(self):
        img = affine_image_1d(2, 5, 6, 6)
        shifted = img.shifted(10)
        assert shifted.count == img.count
        assert set(shifted.values()) == {v + 10 for v in img.values()}

    def test_contains(self):
        img = affine_image_1d(3, 7, 20, 20)
        for v in img.values():
            assert img.contains(v)
        assert not img.contains(img.lo - 1)
        assert not img.contains(11)  # 11 is a Frobenius gap of (3, 7)

    @given(
        st.integers(-6, 6), st.integers(-6, 6),
        st.integers(1, 12), st.integers(1, 12),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_enumeration(self, a, b, n1, n2):
        truth = {a * i + b * j for i in range(1, n1 + 1) for j in range(1, n2 + 1)}
        img = affine_image_1d(a, b, n1, n2)
        assert set(img.values()) == truth
        assert img.count == len(truth)


class TestUnionCount:
    def test_empty(self):
        assert union_count([]) == 0
        assert union_count([AffineImage1D(0, -1, 1, frozenset())]) == 0

    def test_single(self):
        img = affine_image_1d(2, 5, 10, 10)
        assert union_count([img]) == img.count

    def test_identical_shift_zero(self):
        img = affine_image_1d(2, 5, 10, 10)
        assert union_count([img, img.shifted(0)]) == img.count

    @given(
        st.integers(1, 5), st.integers(-5, 5),
        st.integers(2, 10), st.integers(2, 10),
        st.lists(st.integers(-6, 6), min_size=1, max_size=3),
    )
    @settings(max_examples=150, deadline=None)
    def test_union_matches_enumeration(self, a, b, n1, n2, offsets):
        base = affine_image_1d(a, b, n1, n2)
        images = [base.shifted(c) for c in offsets]
        truth = {
            a * i + b * j + c
            for i in range(1, n1 + 1)
            for j in range(1, n2 + 1)
            for c in offsets
        }
        assert union_count(images) == len(truth)

    def test_heterogeneous_steps_path(self):
        img1 = affine_image_1d(2, 4, 6, 6)   # step 2
        img2 = affine_image_1d(3, 6, 6, 6)   # step 3
        truth = set(img1.values()) | set(img2.values())
        assert union_count([img1, img2]) == len(truth)

    def test_disjoint_intervals_hole(self):
        img = affine_image_1d(1, 1, 3, 3)  # {2..6}
        far = img.shifted(100)
        assert union_count([img, far]) == 2 * img.count


class TestMultirefEstimator:
    def test_example8_exact(self):
        prog = parse_program(
            """
            for i = 1 to 25 {
              for j = 1 to 10 {
                X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
              }
            }
            """
        )
        assert supports_exact_multiref(prog, "X")
        est = distinct_accesses_multiref_1d(prog, "X")
        assert est.exact
        assert est.lower == exact_distinct_accesses(prog, "X") == 94

    def test_rejects_unsupported(self):
        prog = parse_program("for i = 1 to 4 { A[i] = A[i-1] }")
        assert not supports_exact_multiref(prog, "A")
        with pytest.raises(ValueError):
            distinct_accesses_multiref_1d(prog, "A")

    def test_nonunit_lower_bounds_normalized(self):
        prog = parse_program(
            "for i = 0 to 4 { for j = 1 to 4 { X[2*i + 5*j] = X[2*i + 5*j + 4] } }"
        )
        assert supports_exact_multiref(prog, "X")
        est = distinct_accesses_multiref_1d(prog, "X")
        assert est.exact
        assert est.lower == exact_distinct_accesses(prog, "X")

    @given(
        st.integers(1, 4),
        st.integers(-4, 4).filter(lambda v: v != 0),
        st.lists(st.integers(-5, 5), min_size=2, max_size=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_matches_oracle(self, a, b, offsets):
        builder = NestBuilder().loop("i", 1, 9).loop("j", 1, 9)
        for k, c in enumerate(offsets):
            builder.use(f"S{k}", ("X", [[a, b]], [c]))
        prog = builder.build()
        if not supports_exact_multiref(prog, "X"):
            return
        est = distinct_accesses_multiref_1d(prog, "X")
        assert est.lower == exact_distinct_accesses(prog, "X")
