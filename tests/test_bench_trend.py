"""Multi-baseline trend checking (``repro bench-trend``): a metric
fails the build only when it drifts monotonically in the bad direction
across the whole window, including the synthetic ``total_wall_s``."""

from __future__ import annotations

import json

import pytest

from repro.reporting import compare_trajectory, render_trend


def _artifact(metrics, created, bench="demo", wall_s=None):
    return {
        "bench": bench,
        "schema": 1,
        "created_unix": created,
        "metrics": dict(metrics),
        "wall_s": dict(wall_s or {}),
    }


def _trajectory(key, values, **kwargs):
    return [
        _artifact({key: value}, created=float(idx), **kwargs)
        for idx, value in enumerate(values)
    ]


class TestTrendVerdicts:
    def test_monotone_bad_drift_regresses(self):
        report = compare_trajectory(_trajectory("mws_words", [100, 110, 130]))
        (trend,) = report.regressions
        assert trend.key == "mws_words"
        assert trend.values == (100.0, 110.0, 130.0)
        assert trend.rel_change == pytest.approx(0.3)
        assert not report.ok

    def test_single_noisy_point_never_fails(self):
        # +20% total but not monotone: the middle point recovered.
        report = compare_trajectory(_trajectory("mws_words", [100, 140, 120]))
        assert report.ok

    def test_drift_below_threshold_passes(self):
        report = compare_trajectory(_trajectory("mws_words", [100, 105, 110]))
        assert report.ok

    def test_threshold_is_inclusive(self):
        report = compare_trajectory(
            _trajectory("mws_words", [100, 110, 120]), threshold=0.2
        )
        assert not report.ok

    def test_higher_is_better_direction(self):
        shrinking = compare_trajectory(_trajectory("reduction", [10, 9, 7]))
        assert [t.key for t in shrinking.regressions] == ["reduction"]
        growing = compare_trajectory(_trajectory("reduction", [7, 9, 10]))
        assert growing.ok

    def test_flat_series_passes(self):
        report = compare_trajectory(_trajectory("mws_words", [50, 50, 50]))
        assert report.ok

    def test_zero_first_value_never_regresses(self):
        report = compare_trajectory(_trajectory("mws_words", [0, 10, 20]))
        assert report.ok

    def test_fewer_points_than_window_skip(self):
        report = compare_trajectory(_trajectory("mws_words", [100, 200]))
        assert report.points == 2
        assert report.trends == ()
        assert report.ok
        assert "not enough history" in render_trend(report)

    def test_window_looks_at_tail_only(self):
        # The regression healed inside the last 3 points.
        report = compare_trajectory(
            _trajectory("mws_words", [10, 100, 100, 100])
        )
        assert report.ok

    def test_total_wall_s_synthesized_from_wall_sections(self):
        artifacts = [
            _artifact({}, created=float(idx),
                      wall_s={"analyze": 1.0 * scale, "search": 2.0 * scale})
            for idx, scale in enumerate([1.0, 1.2, 1.5])
        ]
        report = compare_trajectory(artifacts)
        (trend,) = report.regressions
        assert trend.key == "total_wall_s"
        assert trend.values == pytest.approx((3.0, 3.6, 4.5))

    def test_artifacts_ordered_by_created_unix(self):
        # Passed newest-first: sorted by stamp, the series improves.
        artifacts = list(reversed(_trajectory("mws_words", [130, 110, 100])))
        report = compare_trajectory(artifacts)
        (trend,) = report.trends
        assert trend.values == (130.0, 110.0, 100.0)
        assert report.ok

    def test_only_shared_metrics_are_trended(self):
        artifacts = _trajectory("mws_words", [100, 100, 100])
        artifacts[-1]["metrics"]["new_metric"] = 5
        report = compare_trajectory(artifacts)
        assert [t.key for t in report.trends] == ["mws_words"]


class TestRenderTrend:
    def test_regression_rendering(self):
        report = compare_trajectory(_trajectory("mws_words", [100, 110, 130]))
        text = render_trend(report)
        assert "TREND REGRESSION" in text
        assert "100 -> 110 -> 130" in text
        assert "TREND REGRESSIONS DETECTED" in text

    def test_quiet_unless_verbose(self):
        report = compare_trajectory(_trajectory("mws_words", [50, 50, 50]))
        assert "no sustained drifts" in render_trend(report)
        assert "mws_words" in render_trend(report, verbose=True)


class TestCli:
    def _write(self, directory, stem, artifact):
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{stem}.json"
        path.write_text(json.dumps(artifact), encoding="utf-8")
        return path

    def test_directory_trajectory_passes(self, tmp_path, capsys):
        from repro.cli import main

        for idx, value in enumerate([100, 100, 100]):
            self._write(tmp_path / "hist", f"p{idx}",
                        _artifact({"mws_words": value}, created=float(idx)))
        assert main(["bench-trend", str(tmp_path / "hist")]) == 0
        assert "result: OK" in capsys.readouterr().out

    def test_regressing_trajectory_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        for idx, value in enumerate([100, 115, 130]):
            self._write(tmp_path / "hist", f"p{idx}",
                        _artifact({"mws_words": value}, created=float(idx)))
        assert main(["bench-trend", str(tmp_path / "hist")]) == 1
        assert "TREND REGRESSIONS DETECTED" in capsys.readouterr().out

    def test_mixed_dir_and_file_arguments(self, tmp_path, capsys):
        from repro.cli import main

        for idx, value in enumerate([100, 110]):
            self._write(tmp_path / "hist", f"p{idx}",
                        _artifact({"mws_words": value}, created=float(idx)))
        fresh = self._write(tmp_path, "fresh",
                            _artifact({"mws_words": 130}, created=9.0))
        assert main(["bench-trend", str(tmp_path / "hist"), str(fresh)]) == 1

    def test_benches_trend_independently(self, tmp_path, capsys):
        from repro.cli import main

        for idx, value in enumerate([100, 115, 130]):
            self._write(tmp_path / "hist", f"bad{idx}",
                        _artifact({"mws_words": value}, created=float(idx),
                                  bench="bad"))
            self._write(tmp_path / "hist", f"good{idx}",
                        _artifact({"mws_words": 100}, created=float(idx),
                                  bench="good"))
        assert main(["bench-trend", str(tmp_path / "hist")]) == 1
        out = capsys.readouterr().out
        assert "bench bad" in out
        assert "bench good" in out

    def test_no_artifacts_found(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["bench-trend", str(tmp_path)]) == 1
        assert "no BENCH_" in capsys.readouterr().err

    def test_checked_in_history_passes_with_fresh_point(self, tmp_path):
        # The CI gate's exact shape: two checked-in history points plus
        # a freshly built artifact must not trip the trend checker when
        # the metrics are flat.
        from repro.cli import main
        from repro.reporting.telemetry import build_artifact

        baseline = json.loads(
            open("benchmarks/baselines/BENCH_figure2.json").read()
        )
        fresh = build_artifact(
            "figure2", baseline["metrics"], wall_s={"kernel_rows": 1.0}
        )
        self._write(tmp_path, "figure2", fresh)
        assert main([
            "bench-trend", "benchmarks/baselines/history",
            str(tmp_path / "BENCH_figure2.json"),
        ]) == 0
