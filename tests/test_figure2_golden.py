"""Golden regression pin for the Figure-2 table (ISSUE 1).

The shape tests in ``benchmarks/bench_figure2_table.py`` compare against
the paper's percentages with tolerance bands; this test pins the exact
measured numbers — per-kernel default size, MWS unoptimized, MWS
optimized — to committed fixture values, so a search-engine refactor
(parallelism, memoization, candidate reordering) cannot silently change
the reproduced paper results.

If an *intentional* algorithm improvement changes a value, regenerate
the fixture:

    PYTHONPATH=src python tests/test_figure2_golden.py --regen

and justify the diff in the PR.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.kernels import KERNELS
from repro.reporting import figure2_row

FIXTURE = Path(__file__).parent / "fixtures" / "figure2_golden.json"


def _golden() -> dict:
    return json.loads(FIXTURE.read_text())


def _measure() -> dict:
    return {
        spec.name: {
            "default": (row := figure2_row(spec)).default,
            "mws_unopt": row.mws_unopt,
            "mws_opt": row.mws_opt,
        }
        for spec in KERNELS
    }


def test_fixture_covers_all_kernels():
    assert sorted(_golden()) == sorted(spec.name for spec in KERNELS)


@pytest.mark.parametrize("name", [spec.name for spec in KERNELS])
def test_figure2_values_pinned(name):
    spec = next(s for s in KERNELS if s.name == name)
    row = figure2_row(spec)
    golden = _golden()[name]
    measured = {
        "default": row.default,
        "mws_unopt": row.mws_unopt,
        "mws_opt": row.mws_opt,
    }
    assert measured == golden, (
        f"{name}: measured {measured} != golden {golden} — if this change "
        f"is intentional, regenerate tests/fixtures/figure2_golden.json "
        f"(see module docstring) and explain the delta in the PR"
    )


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        FIXTURE.write_text(
            json.dumps(_measure(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {FIXTURE}")
    else:
        print(json.dumps(_measure(), indent=2, sort_keys=True))
