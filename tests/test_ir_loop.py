"""Tests for the loop/nest IR."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import Loop, LoopNest


def nests(max_depth=3, max_trip=6):
    def build(dims):
        loops = []
        for k, (lo, trip) in enumerate(dims):
            loops.append(Loop(f"i{k}", lo, lo + trip - 1))
        return LoopNest(loops)

    return st.lists(
        st.tuples(st.integers(-3, 3), st.integers(1, max_trip)),
        min_size=1,
        max_size=max_depth,
    ).map(build)


class TestLoop:
    def test_basic(self):
        lp = Loop("i", 1, 10)
        assert lp.trip_count == 10
        assert lp.span == 9

    def test_single_iteration(self):
        assert Loop("i", 5, 5).trip_count == 1

    def test_negative_bounds(self):
        assert Loop("i", -3, 3).trip_count == 7

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Loop("i", 2, 1)

    def test_rejects_bad_name(self):
        with pytest.raises(ValueError):
            Loop("2i", 1, 10)

    def test_rejects_float_bounds(self):
        with pytest.raises(TypeError):
            Loop("i", 1.5, 10)

    def test_str(self):
        assert str(Loop("i", 1, 10)) == "for i = 1 to 10"


class TestLoopNest:
    def test_basic(self):
        nest = LoopNest([Loop("i", 1, 3), Loop("j", 1, 4)])
        assert nest.depth == 2
        assert nest.trip_counts == (3, 4)
        assert nest.total_iterations == 12

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LoopNest([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            LoopNest([Loop("i", 1, 2), Loop("i", 1, 2)])

    def test_iterate_order(self):
        nest = LoopNest([Loop("i", 1, 2), Loop("j", 1, 2)])
        assert list(nest.iterate()) == [(1, 1), (1, 2), (2, 1), (2, 2)]

    def test_contains(self):
        nest = LoopNest([Loop("i", 1, 3)])
        assert nest.contains((2,))
        assert not nest.contains((4,))
        assert not nest.contains((2, 2))

    def test_linearize_inverse_of_iterate(self):
        nest = LoopNest([Loop("i", 0, 2), Loop("j", -1, 1)])
        for pos, point in enumerate(nest.iterate()):
            assert nest.linearize(point) == pos

    def test_linearize_rejects_outside(self):
        nest = LoopNest([Loop("i", 1, 3)])
        with pytest.raises(ValueError):
            nest.linearize((0,))

    def test_loop_lookup(self):
        nest = LoopNest([Loop("i", 1, 3), Loop("j", 1, 4)])
        assert nest.loop("j").upper == 4
        with pytest.raises(KeyError):
            nest.loop("k")

    def test_equality_and_hash(self):
        a = LoopNest([Loop("i", 1, 3)])
        b = LoopNest([Loop("i", 1, 3)])
        assert a == b and hash(a) == hash(b)

    @given(nests())
    @settings(max_examples=50, deadline=None)
    def test_iteration_count_matches(self, nest):
        points = list(nest.iterate())
        assert len(points) == nest.total_iterations
        assert len(set(points)) == len(points)
        # Lexicographically sorted by construction.
        assert points == sorted(points)

    @given(nests())
    @settings(max_examples=50, deadline=None)
    def test_linearize_bijection(self, nest):
        seen = set()
        for point in nest.iterate():
            pos = nest.linearize(point)
            assert 0 <= pos < nest.total_iterations
            seen.add(pos)
        assert len(seen) == nest.total_iterations
