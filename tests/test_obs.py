"""Unit tests for the repro.obs observability layer."""

from __future__ import annotations

import io
import json

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def obs_disabled():
    """Every test starts and ends with instrumentation off."""
    obs.disable()
    yield
    obs.disable()


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step: float = 0.5):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestEnableDisable:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.get_observer() is None

    def test_enable_then_disable_round_trip(self):
        observer = obs.enable()
        assert obs.enabled()
        assert obs.disable() is observer
        assert not obs.enabled()

    def test_disable_idempotent(self):
        assert obs.disable() is None


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        assert obs.span("a") is obs.span("b")

    def test_span_aggregation(self):
        observer = obs.enable(clock=FakeClock(step=1.0))
        for _ in range(3):
            with obs.span("work"):
                pass
        stats = observer.span_stats["work"]
        assert stats.count == 3
        assert stats.total_s == pytest.approx(3.0)
        assert stats.mean_s == pytest.approx(1.0)

    def test_nested_spans_form_paths(self):
        observer = obs.enable(clock=FakeClock())
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        assert set(observer.span_stats) == {"outer", "outer/inner"}

    def test_sibling_spans_share_parent_path(self):
        observer = obs.enable(clock=FakeClock())
        with obs.span("root"):
            with obs.span("a"):
                pass
            with obs.span("a"):
                pass
        assert observer.span_stats["root/a"].count == 2

    def test_span_survives_exceptions(self):
        observer = obs.enable(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("x")
        assert observer.span_stats["boom"].count == 1
        # The stack unwound: a following span is top-level, not nested.
        with obs.span("after"):
            pass
        assert "after" in observer.span_stats


class TestCounters:
    def test_counter_noop_when_disabled(self):
        obs.counter("ignored")
        observer = obs.enable()
        assert "ignored" not in observer.counters

    def test_counter_accumulates(self):
        observer = obs.enable()
        obs.counter("hits")
        obs.counter("hits", 4)
        assert observer.counters["hits"] == 5


class TestProfiled:
    def test_passthrough_when_disabled(self):
        @obs.profiled
        def add(a, b):
            return a + b

        assert add(2, 3) == 5

    def test_records_span_when_enabled(self):
        @obs.profiled("custom.label")
        def work():
            return 42

        observer = obs.enable(clock=FakeClock())
        assert work() == 42
        assert observer.span_stats["custom.label"].count == 1

    def test_bare_decorator_uses_qualname(self):
        @obs.profiled
        def helper():
            return 1

        observer = obs.enable(clock=FakeClock())
        helper()
        (path,) = observer.span_stats
        assert "helper" in path

    def test_wrapped_attribute_preserved(self):
        @obs.profiled
        def documented():
            """docstring"""

        assert documented.__doc__ == "docstring"
        assert documented.__wrapped__() is None


class TestJsonlTrace:
    def _run_traced(self) -> list[dict]:
        sink = io.StringIO()
        obs.enable(trace=sink, clock=FakeClock(step=0.001))
        with obs.span("outer", kernels=2):
            with obs.span("inner"):
                pass
        obs.counter("cache.hits", 7)
        obs.disable()
        return [json.loads(line) for line in sink.getvalue().splitlines()]

    def test_event_stream_structure(self):
        events = self._run_traced()
        kinds = [e["ev"] for e in events]
        assert kinds == ["meta", "span", "span", "counter", "summary"]
        # Inner span completes (and is logged) before its parent.
        assert events[1]["name"] == "inner"
        assert events[1]["path"] == "outer/inner"
        assert events[1]["depth"] == 1
        assert events[2]["name"] == "outer"
        assert events[2]["attrs"] == {"kernels": 2}
        assert events[3] == {
            "seq": 3,
            "ev": "counter",
            "name": "cache.hits",
            "value": 7,
        }

    def test_sequence_numbers_monotonic(self):
        events = self._run_traced()
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_deterministic_with_fake_clock(self):
        assert self._run_traced() == self._run_traced()

    def test_summary_event_matches_summary(self):
        sink = io.StringIO()
        obs.enable(trace=sink, clock=FakeClock())
        with obs.span("s"):
            pass
        observer = obs.disable()
        last = json.loads(sink.getvalue().splitlines()[-1])
        assert last["ev"] == "summary"
        assert last["data"] == observer.summary()

    def test_trace_to_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable(trace=str(path), clock=FakeClock())
        with obs.span("s"):
            pass
        obs.disable()
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == {"seq": 0, "ev": "meta", "version": 1}
        assert any(json.loads(l)["ev"] == "span" for l in lines)


class TestSummaryRendering:
    def test_render_span_summary_table(self):
        from repro.reporting import render_span_summary

        obs.enable(clock=FakeClock(step=0.25))
        with obs.span("search"):
            with obs.span("simulate"):
                pass
        obs.counter("cache.hits", 3)
        observer = obs.disable()
        table = render_span_summary(observer.summary())
        assert "search" in table
        assert "  simulate" in table  # child indented under parent
        assert "cache.hits" in table

    def test_render_empty_summary(self):
        from repro.reporting import render_span_summary

        assert "no spans" in render_span_summary({"spans": {}, "counters": {}})

    def test_span_summary_rows_sorted_by_path(self):
        from repro.reporting import span_summary_rows

        rows = span_summary_rows(
            {
                "spans": {
                    "b": {"count": 1, "total_s": 1.0, "mean_s": 1.0},
                    "a/c": {"count": 2, "total_s": 2.0, "mean_s": 1.0},
                    "a": {"count": 1, "total_s": 3.0, "mean_s": 3.0},
                }
            }
        )
        assert [r.path for r in rows] == ["a", "a/c", "b"]
        assert rows[1].depth == 1 and rows[1].name == "c"


class TestPipelineIntegration:
    def test_search_emits_spans_and_counters(self):
        """The acceptance-criterion stages — estimate, simulate, and
        candidate ranking — all appear in a traced search."""
        from repro.ir import parse_program
        from repro.transform.search import clear_exact_cache, search_mws_2d

        clear_exact_cache()
        sink = io.StringIO()
        obs.enable(trace=sink)
        program = parse_program(
            "for i = 1 to 25 { for j = 1 to 10 { "
            "X[2*i + 5*j + 1] = X[2*i + 5*j + 5] } }"
        )
        search_mws_2d(program, "X")
        observer = obs.disable()
        paths = set(observer.span_stats)
        assert "search.2d" in paths
        assert "search.2d/estimate" in paths
        assert "search.2d/rank" in paths
        assert any(path.endswith("/simulate") for path in paths)
        assert observer.counters["search.cache.misses"] > 0
        events = [json.loads(l) for l in sink.getvalue().splitlines()]
        names = {e.get("name") for e in events if e["ev"] == "span"}
        assert {"estimate", "rank", "simulate"} <= names

    def test_optimize_program_traced(self):
        from repro.core.optimizer import optimize_program
        from repro.ir import parse_program
        from repro.transform.search import clear_exact_cache

        clear_exact_cache()
        obs.enable()
        program = parse_program(
            "for i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j] } }"
        )
        optimize_program(program)
        observer = obs.disable()
        assert "optimize" in observer.span_stats
        assert observer.counters["optimize.candidates"] > 0
