"""Tests for loop distribution and the report exporters."""

import pytest

from repro.ir import parse_program
from repro.ir.interpreter import execute, initial_state, states_equal
from repro.reporting import Figure2Row, figure2_csv, figure2_markdown
from repro.transform import (
    distribute,
    fuse,
    is_distribution_legal,
    statement_dependence_graph,
)


PAIR = """
for i = 1 to 9 {
  S1: T[i] = A[i]
  S2: B[i] = T[i] + T[i-1]
}
"""

CYCLE = """
for i = 1 to 9 {
  S1: T[i] = U[i-1]
  S2: U[i] = T[i]
}
"""


class TestStatementGraph:
    def test_forward_edge(self):
        prog = parse_program(PAIR)
        graph = statement_dependence_graph(prog)
        assert graph.has_edge("S1", "S2")
        assert not graph.has_edge("S2", "S1")

    def test_cycle_detected(self):
        prog = parse_program(CYCLE)
        graph = statement_dependence_graph(prog)
        # S1 -> S2 same iteration (flow on T); S2 -> S1 carried (flow on U).
        assert graph.has_edge("S1", "S2")
        assert graph.has_edge("S2", "S1")

    def test_independent_statements(self):
        prog = parse_program(
            "for i = 1 to 5 { S1: A[i] = 1\n S2: B[i] = 2 }"
        )
        graph = statement_dependence_graph(prog)
        assert graph.number_of_edges() == 0


class TestDistribute:
    def test_splits_pair(self):
        prog = parse_program(PAIR, name="pair")
        seq = distribute(prog)
        assert [len(p.statements) for p in seq.programs] == [1, 1]
        assert seq.programs[0].statements[0].label == "S1"

    def test_cycle_stays_together(self):
        prog = parse_program(CYCLE, name="cycle")
        seq = distribute(prog)
        assert len(seq.programs) == 1
        assert len(seq.programs[0].statements) == 2

    def test_is_distribution_legal(self):
        assert is_distribution_legal(parse_program(PAIR))
        assert not is_distribution_legal(parse_program(CYCLE))

    def test_distribution_preserves_semantics(self):
        prog = parse_program(PAIR, name="pair")
        seq = distribute(prog)
        state = initial_state(prog)
        chained = state
        for part in seq.programs:
            chained = execute(part, state=chained)
        assert states_equal(chained, execute(prog, state=state))

    def test_distribute_then_fuse_roundtrip(self):
        prog = parse_program(PAIR, name="pair")
        seq = distribute(prog)
        refused = fuse(seq.programs[0], seq.programs[1])
        state = initial_state(prog)
        assert states_equal(
            execute(refused, state=state), execute(prog, state=state)
        )

    def test_three_way_chain(self):
        prog = parse_program(
            """
            for i = 1 to 9 {
              S1: T[i] = A[i]
              S2: U[i] = T[i]
              S3: B[i] = U[i] + U[i-1]
            }
            """,
            name="chain3",
        )
        seq = distribute(prog)
        assert len(seq.programs) == 3
        labels = [p.statements[0].label for p in seq.programs]
        assert labels == ["S1", "S2", "S3"]


class TestExport:
    ROWS = [
        Figure2Row("demo", 100, 20, 5, 75.0, 90.0),
        Figure2Row("other", 200, 100, 50, 40.0, 70.0),
    ]

    def test_markdown_shape(self):
        text = figure2_markdown(self.ROWS)
        lines = text.splitlines()
        assert lines[0].startswith("| code |")
        assert len(lines) == 2 + len(self.ROWS) + 1  # header+sep+rows+avg
        assert "**Average**" in lines[-1]

    def test_markdown_values(self):
        text = figure2_markdown(self.ROWS)
        assert "| demo | 100 | 20 | 80.0 (75.0) | 5 | 95.0 (90.0) |" in text

    def test_markdown_empty(self):
        text = figure2_markdown([])
        assert text.splitlines()[0].startswith("| code |")

    def test_csv_roundtrip(self):
        import csv
        import io

        text = figure2_csv(self.ROWS)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["code"] == "demo"
        assert float(rows[0]["opt_reduction_pct"]) == 95.0
