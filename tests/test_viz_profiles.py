"""Edge-case coverage for :mod:`repro.viz.profiles` (satellite d).

The renderers must survive degenerate inputs — empty series, all-zero
occupancy, single-entry histograms — because they sit directly behind
``repro viz --liveness`` and the reporting layer, where an unusual
kernel (zero-reuse programs, empty nests) must degrade to readable text
rather than a ZeroDivisionError.
"""

from __future__ import annotations

from repro.viz import (
    render_histogram,
    render_liveness_profile,
    render_profile_bars,
    sparkline,
)
from repro.window import LivenessProfile


class TestSparkline:
    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_all_zero_series_is_blank(self):
        assert sparkline([0, 0, 0]) == "   "

    def test_single_value(self):
        assert sparkline([5]) == "@"

    def test_downsampling_preserves_peak(self):
        values = [1] * 200
        values[137] = 99
        line = sparkline(values, width=20)
        assert len(line) == 20
        assert "@" in line  # max-pool resampling keeps the spike

    def test_short_series_not_padded(self):
        assert len(sparkline([1, 2], width=60)) == 2


class TestProfileBars:
    def test_empty_series_renders_title_only(self):
        assert render_profile_bars([], title="occupancy:") == "occupancy:"
        assert render_profile_bars([]) == ""

    def test_all_zero_series_draws_empty_chart(self):
        out = render_profile_bars([0, 0], height=2)
        lines = out.splitlines()
        assert lines[0].endswith("|  ")
        assert lines[-1] == "    0 +--"

    def test_single_value_axis_labels(self):
        lines = render_profile_bars([7], height=3).splitlines()
        assert lines[0] == "    7 |#"
        assert lines[-1] == "    0 +-"
        assert len(lines) == 4  # 3 bar rows + baseline

    def test_peak_survives_width_downsampling(self):
        values = [1] * 300
        values[250] = 42
        out = render_profile_bars(values, width=30)
        assert "   42 |" in out
        top_row = out.splitlines()[0]
        assert top_row.count("#") == 1


class TestRenderHistogram:
    def test_empty_histogram(self):
        assert render_histogram({}) == "(empty histogram)"

    def test_empty_histogram_keeps_title(self):
        assert render_histogram({}, title="reuse:") == "reuse:\n(empty histogram)"

    def test_single_entry(self):
        assert render_histogram({5: 3}, width=4) == "    5 |#### 3"

    def test_bars_scale_to_largest_count(self):
        lines = render_histogram({1: 10, 2: 5}, width=10).splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_small_counts_round_up_to_one_mark(self):
        lines = render_histogram({1: 1000, 2: 1}, width=10).splitlines()
        assert lines[1].count("#") == 1

    def test_rows_sorted_by_value(self):
        lines = render_histogram({9: 1, 2: 1, 5: 1}).splitlines()
        assert [int(line.split("|")[0]) for line in lines] == [2, 5, 9]


class TestRenderLivenessProfile:
    def _profile(self, **overrides):
        fields = dict(
            array="A",
            occupancy=(1, 2, 2, 1),
            peak=2,
            peak_time=1,
            peak_point=(1, 2),
            reuse_histogram={1: 3},
        )
        fields.update(overrides)
        return LivenessProfile(**fields)

    def test_headline_names_peak_and_location(self):
        out = render_liveness_profile(self._profile())
        assert "liveness of A: peak 2 at t=1 = iteration (1, 2)" in out
        assert "mean occupancy 1.5" in out
        assert "occupancy over time:" in out
        assert "reuse distances" in out

    def test_empty_profile_renders_without_error(self):
        profile = self._profile(
            occupancy=(), peak=0, peak_time=-1, peak_point=None,
            reuse_histogram={},
        )
        out = render_liveness_profile(profile)
        assert "peak 0 at t=-1" in out
        assert "iteration" not in out
        assert "reuse distances" not in out
        assert "mean occupancy 0.0" in out

    def test_zero_reuse_omits_histogram_section(self):
        out = render_liveness_profile(self._profile(reuse_histogram={}))
        assert "reuse distances" not in out
        assert "occupancy over time:" in out
