"""Unit tests for the previously untested provisioning models:
``memory/prefetch.py`` (double buffering), ``memory/energy.py`` (cost
curves), and ``layout/line_window.py`` (line-granular windows; its
exact-counterpart oracle is ``line-window-element-parity``)."""

import pytest

from repro.ir import parse_program
from repro.layout import RowMajorLayout
from repro.layout.line_window import line_window_profile, max_line_window
from repro.linalg import IntMatrix
from repro.memory.energy import (
    MemoryCostModel,
    access_energy_pj,
    access_latency_ns,
    area_mm2,
)
from repro.memory.prefetch import best_tile_for_budget, plan_double_buffering
from repro.window import max_window_size

from tests.conftest import assert_oracle, fuzz_seeds

STENCIL = parse_program(
    "for i = 1 to 8 { for j = 1 to 8 { B[i][j] = A[i][j] + A[i][j + 1] } }",
    name="stencil",
)


class TestDoubleBuffering:
    def test_plan_shape(self):
        plan = plan_double_buffering(STENCIL, (4, 4))
        assert plan.tile == (4, 4)
        assert plan.tile_iterations == 16
        assert plan.buffer_words == 2 * plan.tile_footprint_words
        assert plan.n_tiles == 4  # 64 iterations / 16 per tile
        assert plan.total_transfer_words == plan.n_tiles * plan.tile_footprint_words
        assert plan.words_per_iteration == pytest.approx(
            plan.total_transfer_words / 64
        )

    def test_footprint_counts_both_arrays(self):
        # A 4x4 tile touches 16 B elements and 4x5 A elements (j stencil).
        plan = plan_double_buffering(STENCIL, (4, 4))
        assert plan.tile_footprint_words == 16 + 20

    def test_bandwidth_threshold(self):
        plan = plan_double_buffering(STENCIL, (4, 4))
        need = plan.bandwidth_required(compute_time_per_iteration=1.0)
        assert need == pytest.approx(plan.tile_footprint_words / 16)
        assert plan.transfers_hidden(need, 1.0)
        assert not plan.transfers_hidden(need * 0.99, 1.0)
        with pytest.raises(ValueError):
            plan.bandwidth_required(0.0)

    def test_invalid_tiles_rejected(self):
        with pytest.raises(ValueError):
            plan_double_buffering(STENCIL, (4,))
        with pytest.raises(ValueError):
            plan_double_buffering(STENCIL, (0, 4))

    def test_best_tile_monotone_in_budget(self):
        small = best_tile_for_budget(STENCIL, 40)
        large = best_tile_for_budget(STENCIL, 400)
        assert small.buffer_words <= 40
        assert large.buffer_words <= 400
        assert large.tile[0] >= small.tile[0]

    def test_best_tile_infeasible_budget(self):
        with pytest.raises(ValueError):
            best_tile_for_budget(STENCIL, 1)


class TestEnergyModel:
    def test_baseline_is_identity(self):
        m = MemoryCostModel()
        assert m.energy_per_access_pj(1024) == pytest.approx(5.0)
        assert m.latency_ns(1024) == pytest.approx(1.2)
        assert m.area_mm2(1024) == pytest.approx(0.08)

    def test_sqrt_and_linear_scaling(self):
        m = MemoryCostModel()
        assert m.energy_per_access_pj(4096) == pytest.approx(2 * 5.0)
        assert m.latency_ns(4096) == pytest.approx(2 * 1.2)
        assert m.area_mm2(4096) == pytest.approx(4 * 0.08)

    def test_monotone_in_capacity(self):
        m = MemoryCostModel()
        caps = [16, 64, 256, 1024, 8192]
        energies = [m.energy_per_access_pj(c) for c in caps]
        assert energies == sorted(energies)

    def test_total_energy_decomposes(self):
        m = MemoryCostModel()
        total = m.total_energy_pj(1024, onchip_accesses=100, offchip_transfers=3)
        assert total == pytest.approx(100 * 5.0 + 3 * 200.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MemoryCostModel().energy_per_access_pj(0)

    def test_module_level_helpers_match_default_model(self):
        m = MemoryCostModel()
        assert access_energy_pj(2048) == pytest.approx(m.energy_per_access_pj(2048))
        assert access_latency_ns(2048) == pytest.approx(m.latency_ns(2048))
        assert area_mm2(2048) == pytest.approx(m.area_mm2(2048))


class TestLineWindow:
    def test_line_size_one_is_element_window(self):
        for array in STENCIL.arrays:
            assert max_line_window(STENCIL, array, line_size=1) == max_window_size(
                STENCIL, array
            )

    def test_lines_bounded_by_distinct_lines(self):
        # A line is live between its first and last touch, so the peak
        # can exceed the *element* window (two once-touched elements on
        # one line keep it live in between) but never the number of
        # distinct lines the array maps onto.
        decl = STENCIL.decl("A")
        layout = RowMajorLayout()
        for line_size in (2, 4, 8):
            lines = {
                layout.address(decl, ref.element(point)) // line_size
                for point in STENCIL.nest.iterate()
                for ref in STENCIL.refs_to("A")
            }
            assert max_line_window(STENCIL, "A", line_size=line_size) <= len(lines)

    def test_column_traversal_wastes_lines(self):
        # Column-major traversal of a row-major array: with 8-wide lines a
        # whole column of live elements lands on 8 distinct lines, while
        # the row traversal of the same nest reuses each line across j.
        row = parse_program(
            "for i = 1 to 8 { for j = 1 to 8 { A[i][j] = A[i][j - 1] } }"
        )
        interchange = IntMatrix([[0, 1], [1, 0]])
        native = max_line_window(row, "A", line_size=8)
        transposed = max_line_window(row, "A", line_size=8, transformation=interchange)
        assert transposed > native

    def test_profile_peak_matches_max(self):
        profile = line_window_profile(STENCIL, "A", line_size=4)
        assert max(profile.sizes) == max_line_window(STENCIL, "A", line_size=4)
        assert len(profile.sizes) == STENCIL.nest.total_iterations

    def test_unknown_array_and_bad_line_size(self):
        with pytest.raises(KeyError):
            max_line_window(STENCIL, "nope")
        with pytest.raises(ValueError):
            max_line_window(STENCIL, "A", line_size=0)

    def test_explicit_layout_accepted(self):
        assert max_line_window(
            STENCIL, "A", layout=RowMajorLayout(), line_size=4
        ) == max_line_window(STENCIL, "A", line_size=4)

    @pytest.mark.parametrize("seed", fuzz_seeds(10, salt=31))
    def test_parity_oracle(self, seed, tmp_path):
        assert_oracle("line-window-element-parity", seed, tmp_path)
