"""Tests for nest sequences and stride normalization."""

import pytest

from repro.ir import parse_program
from repro.ir.sequence import ProgramSequence, sequence_memory_report
from repro.window import max_total_window


class TestStrides:
    def test_stride_normalization(self):
        prog = parse_program("for i = 0 to 8 step 2 { A[i] = 1 }")
        # Normalized loop runs 1..5; access becomes A[2*k - 2].
        assert prog.nest.trip_counts == (5,)
        ref = prog.statements[0].writes[0]
        assert ref.access.rows == ((2,),)
        assert ref.offset == (-2,)
        touched = {ref.element(p)[0] for p in prog.nest.iterate()}
        assert touched == {0, 2, 4, 6, 8}

    def test_stride_with_nonzero_lower(self):
        prog = parse_program("for i = 3 to 11 step 4 { A[i] = 1 }")
        ref = prog.statements[0].writes[0]
        touched = sorted(ref.element(p)[0] for p in prog.nest.iterate())
        assert touched == [3, 7, 11]

    def test_stride_inner_loop(self):
        prog = parse_program(
            "for i = 1 to 4 { for j = 0 to 6 step 3 { A[i][j] = 1 } }"
        )
        assert prog.nest.trip_counts == (4, 3)
        touched = {
            prog.statements[0].writes[0].element(p)
            for p in prog.nest.iterate()
        }
        assert touched == {(i, j) for i in range(1, 5) for j in (0, 3, 6)}

    def test_stride_partial_last(self):
        # 1..10 step 3 -> 1, 4, 7, 10.
        prog = parse_program("for i = 1 to 10 step 3 { A[i] = 1 }")
        assert prog.nest.trip_counts == (4,)

    def test_bad_step_rejected(self):
        from repro.ir import ParseError

        with pytest.raises(ParseError):
            parse_program("for i = 1 to 10 step 0 { A[i] = 1 }")
        with pytest.raises(ParseError):
            parse_program("for i = 1 to 10 step -2 { A[i] = 1 }")

    def test_stride_empty_loop_rejected(self):
        from repro.ir import ParseError

        with pytest.raises(ParseError):
            parse_program("for i = 10 to 1 step 2 { A[i] = 1 }")

    def test_strided_window_analysis(self):
        # A strided reference reuses elements across the stride lattice.
        prog = parse_program(
            """
            for t = 1 to 3 {
              for i = 0 to 14 step 2 {
                B[0] = A[i]
              }
            }
            """
        )
        assert max_total_window(prog) > 0


class TestSequences:
    def make(self):
        produce = parse_program(
            "for i = 1 to 8 { for j = 1 to 8 { T[i][j] = A[i][j] } }",
            name="produce",
        )
        consume = parse_program(
            "for i = 1 to 8 { for j = 1 to 8 { B[i][j] = T[i][j] + T[i-1][j] } }",
            name="consume",
        )
        return ProgramSequence([produce, consume], name="chain")

    def test_structure(self):
        seq = self.make()
        assert seq.arrays == ("A", "T", "B")
        assert seq.producers("T") == [0]
        assert 1 in seq.consumers("T")

    def test_live_between(self):
        seq = self.make()
        live = seq.live_between("T", 0)
        # All 64 produced elements are read by the consumer (T[i][j]).
        assert len(live) == 64

    def test_live_between_unconsumed(self):
        seq = self.make()
        assert seq.live_between("B", 0) == set()

    def test_boundary_validation(self):
        seq = self.make()
        with pytest.raises(ValueError):
            seq.live_between("T", 1)

    def test_memory_report(self):
        seq = self.make()
        report = sequence_memory_report(seq)
        assert report.per_boundary == (64,)
        # The requirement is dominated by the carried T tile plus the
        # running nest's window.
        assert report.requirement >= 64
        assert report.requirement <= report.declared
        assert 0.0 <= report.saving <= 1.0

    def test_duplicate_names_rejected(self):
        p = parse_program("for i = 1 to 4 { A[i] = 1 }", name="x")
        with pytest.raises(ValueError):
            ProgramSequence([p, p])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ProgramSequence([])

    def test_single_nest_sequence(self):
        p = parse_program("for i = 1 to 4 { A[i] = A[i-1] }", name="only")
        report = sequence_memory_report(ProgramSequence([p]))
        assert report.per_boundary == ()
        assert report.requirement == max_total_window(p)
