"""Tests for the command-line interface."""

import pytest

from repro.cli import main

EXAMPLE_7 = """
for i = 1 to 20 {
  for j = 1 to 30 {
    X[2*i - 3*j]
  }
}
"""


@pytest.fixture
def loop_file(tmp_path):
    path = tmp_path / "loop.txt"
    path.write_text(EXAMPLE_7)
    return str(path)


class TestCli:
    def test_analyze(self, loop_file, capsys):
        assert main(["analyze", loop_file]) == 0
        out = capsys.readouterr().out
        assert "max window size" in out
        assert "86" in out

    def test_dependences(self, loop_file, capsys):
        assert main(["dependences", loop_file]) == 0
        out = capsys.readouterr().out
        # Paper: "The only dependence in this example is the vector (3, 2)".
        assert "input" in out and "(3, 2)" in out

    def test_dependences_no_input(self, loop_file, capsys):
        assert main(["dependences", "--no-input", loop_file]) == 0
        assert "no constant-distance dependences" in capsys.readouterr().out

    def test_optimize(self, loop_file, capsys):
        assert main(["optimize", loop_file]) == 0
        out = capsys.readouterr().out
        assert "MWS before : 86" in out
        assert "MWS after" in out

    def test_optimize_codegen(self, loop_file, capsys):
        assert main(["optimize", "--codegen", loop_file]) == 0
        out = capsys.readouterr().out
        assert "for u1 =" in out

    def test_size(self, loop_file, capsys):
        assert main(["size", loop_file]) == 0
        out = capsys.readouterr().out
        assert "provisioned" in out

    def test_size_optimized_smaller(self, loop_file, capsys):
        main(["size", loop_file])
        plain = capsys.readouterr().out
        main(["size", "--optimized", loop_file])
        optimized = capsys.readouterr().out

        def mws(text):
            line = next(l for l in text.splitlines() if "maximum window" in l)
            return int(line.split(":")[1].split()[0])

        assert mws(optimized) < mws(plain)

    def test_figure2_single_kernel(self, capsys):
        assert main(["figure2", "--kernel", "matmult"]) == 0
        out = capsys.readouterr().out
        assert "matmult" in out and "273" in out

    def test_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent/loop.txt"]) == 1
        assert "error" in capsys.readouterr().err

    def test_parse_error(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("for i = 1 to { }")
        assert main(["analyze", str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_kernel(self, capsys):
        assert main(["figure2", "--kernel", "nope"]) == 1


class TestCliExtensions:
    def test_buffer(self, tmp_path, capsys):
        path = tmp_path / "ex8.txt"
        path.write_text(
            "for i = 1 to 25 { for j = 1 to 10 { "
            "X[2*i + 5*j + 1] = X[2*i + 5*j + 5] } }"
        )
        assert main(["buffer", str(path)]) == 0
        out = capsys.readouterr().out
        assert "MWS=44" in out and "modulus=44" in out
        assert "X_buf[" in out

    def test_buffer_optimized(self, tmp_path, capsys):
        path = tmp_path / "ex8.txt"
        path.write_text(
            "for i = 1 to 25 { for j = 1 to 10 { "
            "X[2*i + 5*j + 1] = X[2*i + 5*j + 5] } }"
        )
        assert main(["buffer", "--optimized", str(path)]) == 0
        assert "MWS=21" in capsys.readouterr().out

    def test_distribute(self, tmp_path, capsys):
        path = tmp_path / "pair.txt"
        path.write_text(
            "for i = 1 to 9 {\n  S1: T[i] = A[i]\n  S2: B[i] = T[i] + T[i-1]\n}"
        )
        assert main(["distribute", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 nest(s)" in out

    def test_viz(self, loop_file, capsys):
        assert main(["viz", loop_file]) == 0
        out = capsys.readouterr().out
        assert "window of X over time" in out
        assert "#" in out


class TestCliObservability:
    def test_trace_writes_jsonl_and_prints_summary(self, loop_file, tmp_path, capsys):
        import json

        from repro.transform.search import clear_exact_cache

        clear_exact_cache()  # a warm cache would skip the simulate spans
        trace = tmp_path / "trace.jsonl"
        assert main(["--trace", str(trace), "optimize", loop_file]) == 0
        captured = capsys.readouterr()
        assert "MWS before" in captured.out
        assert "trace written to" in captured.err
        assert "span" in captured.err and "counter" in captured.err
        events = [json.loads(l) for l in trace.read_text().splitlines()]
        assert events[0]["ev"] == "meta"
        span_paths = {e["path"] for e in events if e["ev"] == "span"}
        assert any("optimize" in p for p in span_paths)
        assert any(p.endswith("simulate") for p in span_paths)
        assert events[-1]["ev"] == "summary"

    def test_trace_disabled_after_run(self, loop_file, tmp_path):
        from repro import obs

        trace = tmp_path / "t.jsonl"
        main(["--trace", str(trace), "analyze", loop_file])
        assert not obs.enabled()

    def test_workers_flag_matches_serial(self, loop_file, capsys):
        from repro.transform.search import clear_exact_cache

        clear_exact_cache()
        assert main(["optimize", loop_file]) == 0
        serial = capsys.readouterr().out
        clear_exact_cache()
        assert main(["--workers", "2", "optimize", loop_file]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_figure2_accepts_workers(self, capsys):
        assert main(["--workers", "2", "figure2", "--kernel", "matmult"]) == 0
        assert "matmult" in capsys.readouterr().out


class TestCliHierarchy:
    def test_hierarchy_kernel_target(self, capsys):
        assert main(["hierarchy", "sor", "--preset", "tcm"]) == 0
        out = capsys.readouterr().out
        assert "through hierarchy 'tcm'" in out
        assert "tier" in out and "offchip" in out
        assert "joint (transformation, tile, placement) search:" in out
        assert "saving" in out

    def test_hierarchy_file_target(self, loop_file, capsys):
        assert main(["hierarchy", loop_file, "--preset", "cache"]) == 0
        out = capsys.readouterr().out
        assert "through hierarchy 'cache'" in out
        assert "l1" in out and "sram" in out

    def test_hierarchy_no_search(self, loop_file, capsys):
        assert main(["hierarchy", loop_file, "--no-search"]) == 0
        out = capsys.readouterr().out
        assert "joint" not in out
        assert "energy" in out

    def test_hierarchy_native_restricts_candidates(self, loop_file, capsys):
        assert main(["hierarchy", loop_file, "--native"]) == 0
        out = capsys.readouterr().out
        assert "T=native" in out

    def test_hierarchy_lru_policy(self, loop_file, capsys):
        assert main(["hierarchy", loop_file, "--policy", "lru",
                     "--no-search"]) == 0
        assert "offchip transfers" in capsys.readouterr().out

    def test_hierarchy_output_deterministic(self, loop_file, capsys):
        assert main(["hierarchy", loop_file, "--preset", "tcm"]) == 0
        first = capsys.readouterr().out
        assert main(["hierarchy", loop_file, "--preset", "tcm"]) == 0
        assert capsys.readouterr().out == first

    def test_hierarchy_unknown_preset(self, loop_file, capsys):
        assert main(["hierarchy", loop_file, "--preset", "dram"]) == 1
        err = capsys.readouterr().err
        assert "unknown hierarchy preset" in err
        assert "tcm, cache, flat" in err

    def test_optimize_with_hierarchy_flag(self, loop_file, capsys):
        assert main(["optimize", loop_file, "--hierarchy", "tcm"]) == 0
        out = capsys.readouterr().out
        assert "hierarchy plan (tcm):" in out
        assert "joint :" in out and "flat  :" in out


class TestCliStoreCompact:
    def test_requires_store(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        assert main(["store-compact"]) == 1
        assert "no store" in capsys.readouterr().err

    def test_compacts_and_reports(self, tmp_path, capsys):
        from repro.store import ResultStore

        store = ResultStore(tmp_path)
        store.put("mws", {"k": 1}, {"mws": 3})
        bad = store.record_path("mws", {"k": 2})
        bad.write_text("{truncated", encoding="utf-8")
        assert main(["--store", str(tmp_path), "store-compact"]) == 0
        out = capsys.readouterr().out
        assert "deleted 1 corrupt" in out
        assert not bad.exists()
        # Second sweep is a no-op on the now-clean store.
        assert main(["--store", str(tmp_path), "store-compact"]) == 0
        assert "deleted 0 corrupt" in capsys.readouterr().out


class TestCliServe:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8787
        assert args.quota_rate is None and not args.no_quota
        assert args.queue_limit is None
        assert args.compact_interval is None

    def test_serve_end_to_end_seals_ledger(self, tmp_path):
        # The CLI path: subprocess `repro serve`, ephemeral port parsed
        # from stdout, one request, graceful shutdown, and the sealed
        # ledger record carries command "serve".
        import json
        import subprocess
        import sys
        import urllib.request

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "--store", str(tmp_path),
             "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on http://" in line, line
            url = line.strip().rsplit(" ", 1)[-1]
            with urllib.request.urlopen(f"{url}/healthz", timeout=30) as r:
                assert json.loads(r.read())["status"] == "ok"
            req = urllib.request.Request(
                f"{url}/shutdown", data=b"{}", method="POST")
            with urllib.request.urlopen(req, timeout=30) as r:
                assert r.status == 202
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        from repro.obs.ledger import load_run
        from repro.store import ResultStore

        record = load_run(ResultStore(tmp_path), "last")
        assert record is not None and record["command"] == "serve"
