"""Semantic verification: legal transformations preserve program results."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import parse_program
from repro.ir.interpreter import (
    differing_elements,
    execute,
    initial_state,
    states_equal,
)
from repro.linalg import IntMatrix
from repro.transform import is_legal
from repro.transform.elementary import bounded_unimodular_matrices
from repro.transform.legality import ordering_distances

EX8 = """
for i = 1 to 12 {
  for j = 1 to 8 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
"""

STENCIL = """
for i = 1 to 8 {
  for j = 1 to 8 {
    A[i][j] = A[i-1][j] + A[i][j-1]
  }
}
"""


class TestInterpreter:
    def test_deterministic(self):
        prog = parse_program(STENCIL)
        assert states_equal(execute(prog), execute(prog))

    def test_initial_state_covers_all_touched(self):
        prog = parse_program(STENCIL)
        state = initial_state(prog)
        for point in prog.nest.iterate():
            for ref in prog.references:
                assert ref.element(point) in state[ref.array]

    def test_input_state_not_mutated(self):
        prog = parse_program(STENCIL)
        state = initial_state(prog)
        snapshot = {k: dict(v) for k, v in state.items()}
        execute(prog, state=state)
        assert state == snapshot

    def test_writes_change_state(self):
        prog = parse_program(STENCIL)
        before = initial_state(prog)
        after = execute(prog, state=before)
        assert not states_equal(before, after)

    def test_pure_use_program_is_identity(self):
        prog = parse_program("for i = 1 to 5 { A[i] + A[i-1] }")
        state = initial_state(prog)
        assert states_equal(execute(prog, state=state), state)

    def test_non_unimodular_rejected(self):
        prog = parse_program(STENCIL)
        with pytest.raises(ValueError):
            execute(prog, IntMatrix([[2, 0], [0, 1]]))

    def test_differing_elements_diagnostics(self):
        prog = parse_program(STENCIL)
        a = execute(prog)
        b = {k: dict(v) for k, v in a.items()}
        b["A"][(1, 1)] += 1
        assert differing_elements(a, b) == [("A", (1, 1))]


class TestLegalitySemantics:
    def test_legal_transformation_preserves_example8(self):
        prog = parse_program(EX8)
        t = IntMatrix([[2, 3], [1, 1]])
        assert is_legal(t, ordering_distances(prog, "X"))
        state = initial_state(prog)
        assert states_equal(
            execute(prog, state=state), execute(prog, t, state=state)
        )

    def test_illegal_transformation_breaks_stencil(self):
        # Reversing i flips the flow dependence (1, 0): results differ.
        prog = parse_program(STENCIL)
        t = IntMatrix([[-1, 0], [0, 1]])
        assert not is_legal(t, ordering_distances(prog, "A"))
        state = initial_state(prog)
        original = execute(prog, state=state)
        reversed_order = execute(prog, t, state=state)
        assert not states_equal(original, reversed_order)
        assert differing_elements(original, reversed_order)

    def test_interchange_legal_on_stencil(self):
        prog = parse_program(STENCIL)
        t = IntMatrix([[0, 1], [1, 0]])
        assert is_legal(t, ordering_distances(prog, "A"))
        state = initial_state(prog)
        assert states_equal(
            execute(prog, state=state), execute(prog, t, state=state)
        )

    @given(st.integers(0, 50_000))
    @settings(max_examples=40, deadline=None)
    def test_every_legal_bounded_matrix_preserves_semantics(self, seed):
        # Sample a random unimodular matrix with small entries; if our
        # legality analysis accepts it, execution must agree.  This is
        # the end-to-end soundness property of the whole dependence
        # machinery.
        rng = random.Random(seed)
        candidates = list(bounded_unimodular_matrices(2, 1))
        t = candidates[rng.randrange(len(candidates))]
        prog = parse_program(EX8)
        if not is_legal(t, ordering_distances(prog, "X")):
            return
        state = initial_state(prog)
        assert states_equal(
            execute(prog, state=state), execute(prog, t, state=state)
        )

    @given(st.integers(0, 50_000))
    @settings(max_examples=30, deadline=None)
    def test_soundness_on_stencil(self, seed):
        rng = random.Random(seed)
        candidates = list(bounded_unimodular_matrices(2, 1))
        t = candidates[rng.randrange(len(candidates))]
        prog = parse_program(STENCIL)
        if not is_legal(t, ordering_distances(prog, "A")):
            return
        state = initial_state(prog)
        assert states_equal(
            execute(prog, state=state), execute(prog, t, state=state)
        )
