"""Liveness-profile instrumentation: reference vs fast equality, metric
publication through the observer, and the disabled-path guard."""

from __future__ import annotations

import pytest

from repro import obs
from repro.ir import parse_program
from repro.linalg import IntMatrix
from repro.window import (
    LivenessProfile,
    liveness_profile,
    max_window_size,
    record_liveness,
)
from repro.window.fast import liveness_profile_fast, max_window_size_fast
from repro.window.simulator import max_window_size_reference
from repro.window.zhao_malik import def_use_occupancy, max_window_size_zhao_malik

EX8 = """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
"""

INTERCHANGE = IntMatrix([[0, 1], [1, 0]])


@pytest.fixture(autouse=True)
def obs_disabled():
    obs.disable()
    yield
    obs.disable()


class TestReferenceProfile:
    def test_peak_matches_mws(self):
        program = parse_program(EX8)
        profile = liveness_profile(program, "X")
        assert profile.peak == 44
        assert profile.peak == max_window_size_reference(program, "X")
        assert profile.occupancy[profile.peak_time] == 44
        assert max(profile.occupancy) == 44

    def test_peak_point_is_iteration_at_peak_time(self):
        program = parse_program(EX8)
        profile = liveness_profile(program, "X")
        order = list(program.nest.iterate())
        assert profile.peak_point == order[profile.peak_time]

    def test_reuse_histogram_counts_consecutive_gaps(self):
        # A[i] and A[i-1]: every element except the edges is read twice,
        # one iteration apart.
        program = parse_program("for i = 1 to 9 { B[0] = A[i] + A[i-1] }")
        profile = liveness_profile(program, "A")
        assert profile.reuse_histogram == {1: 8}
        assert profile.reuse_count == 8

    def test_no_reuse_means_empty_histogram_and_zero_peak(self):
        program = parse_program("for i = 1 to 4 { A[i] = 1 }")
        profile = liveness_profile(program, "A")
        assert profile.peak == 0
        assert profile.occupancy == (0, 0, 0, 0)
        assert profile.reuse_histogram == {}
        assert profile.mean_occupancy == 0.0

    def test_mean_occupancy(self):
        profile = LivenessProfile(
            array="A",
            occupancy=(1, 2, 3),
            peak=3,
            peak_time=2,
            peak_point=None,
            reuse_histogram={},
        )
        assert profile.mean_occupancy == pytest.approx(2.0)


class TestFastMatchesReference:
    @pytest.mark.parametrize("transformation", [None, INTERCHANGE])
    def test_full_profile_equality(self, transformation):
        program = parse_program(EX8)
        ref = liveness_profile(program, "X", transformation)
        fast = liveness_profile_fast(program, "X", transformation)
        assert fast.array == ref.array
        assert fast.occupancy == ref.occupancy
        assert fast.peak == ref.peak
        assert fast.peak_time == ref.peak_time
        assert fast.peak_point == ref.peak_point
        assert fast.reuse_histogram == dict(ref.reuse_histogram)

    def test_profile_flag_returns_same_mws(self):
        program = parse_program(EX8)
        obs.enable()
        assert max_window_size_fast(program, "X", profile=True) == 44
        assert max_window_size(program, "X", profile=True) == 44

    def test_zero_window_program(self):
        program = parse_program("for i = 1 to 4 { A[i] = 1 }")
        ref = liveness_profile(program, "A")
        fast = liveness_profile_fast(program, "A")
        assert fast.occupancy == ref.occupancy == (0, 0, 0, 0)
        assert fast.peak == ref.peak == 0
        assert fast.reuse_histogram == {}


class TestMetricPublication:
    def test_record_liveness_publishes_gauges_and_histograms(self):
        program = parse_program(EX8)
        obs.enable()
        record_liveness(liveness_profile(program, "X"))
        summary = obs.disable().summary()
        assert summary["gauges"]["liveness.X.peak"] == 44
        occupancy = summary["histograms"]["liveness.X.occupancy"]
        assert occupancy["count"] == program.nest.total_iterations
        reuse = summary["histograms"]["liveness.X.reuse_distance"]
        assert reuse["count"] == liveness_profile(program, "X").reuse_count

    def test_profile_flag_records_through_simulators(self):
        program = parse_program(EX8)
        obs.enable()
        max_window_size(program, "X", profile=True)
        summary = obs.disable().summary()
        assert summary["gauges"]["liveness.X.peak"] == 44
        assert summary["gauges"]["liveness.X.peak_time"] == \
            liveness_profile(program, "X").peak_time

    def test_reference_profile_flag_records(self):
        program = parse_program(EX8)
        obs.enable()
        assert max_window_size_reference(program, "X", profile=True) == 44
        summary = obs.disable().summary()
        assert summary["gauges"]["liveness.X.peak"] == 44

    def test_profile_false_records_nothing(self):
        program = parse_program(EX8)
        obs.enable()
        max_window_size(program, "X", profile=False)
        summary = obs.disable().summary()
        assert "gauges" not in summary
        assert "histograms" not in summary

    def test_record_liveness_noop_when_disabled(self):
        program = parse_program(EX8)
        record_liveness(liveness_profile(program, "X"))  # must not raise
        assert not obs.enabled()

    def test_zhao_malik_profile_agrees_with_reference(self):
        program = parse_program(EX8)
        ref = liveness_profile(program, "X")
        obs.enable()
        assert max_window_size_zhao_malik(program, "X", profile=True) == 44
        summary = obs.disable().summary()
        assert summary["gauges"]["liveness.zm.X.peak"] == ref.peak
        assert summary["gauges"]["liveness.zm.X.peak_time"] == ref.peak_time
        zm_occ = summary["histograms"]["liveness.zm.X.occupancy"]
        assert zm_occ["count"] == len(ref.occupancy)
        assert zm_occ["sum"] == sum(ref.occupancy)


class TestDisabledPathGuard:
    def test_profiling_skipped_entirely_when_disabled(self, monkeypatch):
        """With obs off, profile=True must not even build the profile."""
        import repro.window.fast as fast_mod

        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("profiling ran while obs disabled")

        monkeypatch.setattr(fast_mod, "liveness_profile_fast", explode)
        program = parse_program(EX8)
        assert not obs.enabled()
        assert max_window_size_fast(program, "X", profile=True) == 44


class TestDefUseOccupancy:
    def test_occupancy_peak_matches_def_use_peak(self):
        from repro.window.zhao_malik import def_use_peak

        program = parse_program(EX8)
        occupancy = def_use_occupancy(program, "X")
        assert len(occupancy) == program.nest.total_iterations
        assert max(occupancy) == def_use_peak(program, "X")


class TestVizRendering:
    def test_render_liveness_profile_sections(self):
        from repro.viz import render_liveness_profile

        program = parse_program(EX8)
        text = render_liveness_profile(liveness_profile(program, "X"))
        assert "liveness of X: peak 44" in text
        assert "occupancy over time:" in text
        assert "reuse distances" in text

    def test_render_without_reuse_omits_histogram(self):
        from repro.viz import render_liveness_profile

        program = parse_program("for i = 1 to 4 { A[i] = 1 }")
        text = render_liveness_profile(liveness_profile(program, "A"))
        assert "reuse distances" not in text


class TestCliLiveness:
    def test_viz_liveness_flag(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "ex8.txt"
        source.write_text(EX8)
        assert main(["viz", str(source), "--liveness"]) == 0
        out = capsys.readouterr().out
        assert "liveness of X: peak 44" in out
        assert "reuse distances" in out
