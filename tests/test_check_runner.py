"""Runner and CLI tests for ``repro check``: budgets, corpus writes,
timeouts, metrics counters, and the replay/list entry points."""

import json

import pytest

from repro import obs
from repro.check import get_oracle, load_repro, run_check, write_repro
from repro.check.oracles import Oracle
from repro.check.runner import (
    CaseTimeout,
    _alarm,
    case_filename,
    render_check_report,
    replay_file,
)
from repro.cli import main
from repro.ir import parse_program


class _AlwaysFails(Oracle):
    name = "test-always-fails"
    kind = "cross"
    paper = "test double"

    def check(self, program, seed=0):
        return self.fail("synthetic violation", program)


class _AlwaysErrors(Oracle):
    name = "test-always-errors"
    kind = "cross"
    paper = "test double"

    def check(self, program, seed=0):
        raise RuntimeError("synthetic error")


@pytest.fixture
def fake_oracles(monkeypatch):
    from repro.check import oracles as oracle_module

    fakes = {o.name: o for o in (_AlwaysFails(), _AlwaysErrors())}
    monkeypatch.setattr(oracle_module, "ORACLES", {**oracle_module.ORACLES, **fakes})
    return fakes


class TestRunCheck:
    def test_seed_budget_counts_cases(self):
        report = run_check(["estimate-brackets-exact"], seeds=7)
        assert report.cases == 7
        assert report.ok
        assert report.stats["estimate-brackets-exact"].violations == 0

    def test_time_budget_stops(self):
        report = run_check(["estimate-brackets-exact"], time_budget=0.2)
        assert report.seconds < 5
        assert report.cases >= 1

    def test_base_seed_offsets_range(self):
        a = run_check(["engines-agree-2d"], seeds=2, base_seed=100)
        assert a.cases == 2
        assert a.ok

    def test_violations_shrink_and_write_corpus(self, fake_oracles, tmp_path):
        report = run_check(["test-always-fails"], seeds=2, corpus_dir=tmp_path)
        assert not report.ok
        assert len(report.failures) == 2
        for failure in report.failures:
            assert failure.statements == 1  # shrinker ran
            assert failure.path is not None and failure.path.exists()
            case = load_repro(failure.path)
            assert case.oracle == "test-always-fails"
        rendered = render_check_report(report)
        assert "--replay" in rendered
        assert "FAIL test-always-fails" in rendered

    def test_no_shrink_flag(self, fake_oracles):
        report = run_check(["test-always-fails"], seeds=1, do_shrink=False)
        assert not report.ok
        # Without shrinking the failure keeps the generated program.
        generated = get_oracle("test-always-fails").generate(0)
        assert report.failures[0].statements == len(generated.statements)

    def test_errors_are_isolated(self, fake_oracles):
        report = run_check(
            ["test-always-errors", "estimate-brackets-exact"], seeds=3
        )
        assert report.stats["test-always-errors"].errors == 3
        assert report.stats["estimate-brackets-exact"].cases == 3
        assert ("test-always-errors", 0) == report.errors[0][:2]
        assert "RuntimeError" in report.errors[0][2]
        assert "ERROR test-always-errors" in render_check_report(report)

    def test_counters_flow_through_obs(self):
        observer = obs.enable()
        try:
            run_check(["estimate-brackets-exact"], seeds=4)
            counters = observer.counters
            assert counters["check.cases"] >= 4
            assert counters["check.estimate-brackets-exact.cases"] >= 4
        finally:
            obs.disable()

    def test_unknown_oracle_raises(self):
        with pytest.raises(KeyError):
            run_check(["no-such-oracle"], seeds=1)


class TestAlarm:
    def test_alarm_interrupts(self):
        with pytest.raises(CaseTimeout):
            with _alarm(0.05):
                while True:
                    pass

    def test_alarm_disarmed_for_zero(self):
        with _alarm(0):
            pass


class TestCorpusFiles:
    def test_write_is_canonical_and_stable(self, tmp_path):
        program = parse_program("for i = 1 to 3 { A[i] = A[i + 1] }", name="repro")
        p1 = write_repro(tmp_path, "engines-agree-2d", program, 5, "detail")
        p2 = write_repro(tmp_path, "engines-agree-2d", program, 5, "detail")
        assert p1 == p2  # same content-hash filename, overwritten in place
        data = json.loads(p1.read_text())
        assert list(data) == sorted(data)
        assert data["schema"] == 1
        assert p1.name == case_filename(load_repro(p1))

    def test_load_rejects_unknown_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 99}))
        with pytest.raises(ValueError, match="schema"):
            load_repro(bad)

    def test_replay_file_roundtrip(self, tmp_path):
        program = parse_program(
            "for i1 = 1 to 3 { for i2 = 1 to 3 { A0[i1][i2] = A0[i1 - 1][i2] } }",
            name="repro",
        )
        path = write_repro(tmp_path, "estimate-brackets-exact", program, 0, "pin")
        assert replay_file(path) is None


class TestCheckCli:
    def test_list(self, capsys):
        assert main(["check", "--list"]) == 0
        out = capsys.readouterr().out
        assert "estimate-brackets-exact" in out
        assert "metamorphic" in out

    def test_seeds_run_green(self, capsys):
        rc = main(["check", "--seeds", "2", "--oracle", "trip-extension-monotone"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out

    def test_replay_pass_and_fail(self, tmp_path, capsys):
        program = parse_program("for i = 1 to 3 { A[i] = A[i + 1] }", name="repro")
        path = write_repro(tmp_path, "estimate-brackets-exact", program, 0, "pin")
        assert main(["check", "--replay", str(path)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_replay_missing_file_errors(self, capsys):
        assert main(["check", "--replay", "does-not-exist.json"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_time_budget_smoke(self, capsys):
        rc = main(
            ["check", "--time-budget", "2", "--oracle", "estimate-brackets-exact"]
        )
        assert rc == 0
        assert "cases in" in capsys.readouterr().out
