"""Tests for legality, elementary transforms, completion, searches and
the two baselines — pinned to the paper's Examples 7, 8 and 10."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import parse_program
from repro.linalg import IntMatrix, is_unimodular
from repro.transform import (
    complete_first_row_2d,
    complete_rows_legal,
    eisenbeis_search,
    exhaustive_search,
    interchange,
    is_fully_permutable,
    is_legal,
    is_tileable,
    li_pingali_transformation,
    pick_tile_size,
    reversal,
    search_mws_2d,
    search_mws_3d,
    signed_permutations,
    skew,
    tile_footprint,
    transformed_distances,
)
from repro.transform.elementary import bounded_unimodular_matrices
from repro.transform.legality import ordering_distances
from repro.window import max_window_size


EX7 = """
for i = 1 to 20 {
  for j = 1 to 30 {
    Y[0] = X[2*i - 3*j]
  }
}
"""

EX8 = """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
"""


class TestLegality:
    def test_transformed_distances(self):
        t = IntMatrix([[0, 1], [1, 0]])
        assert transformed_distances(t, [(1, -2)]) == [(-2, 1)]

    def test_is_legal(self):
        assert is_legal(IntMatrix([[0, 1], [1, 0]]), [(1, 0)])
        assert not is_legal(IntMatrix([[0, 1], [1, 0]]), [(1, -1)])
        assert is_legal(IntMatrix.identity(2), [])

    def test_is_tileable_paper_example8(self):
        dists = [(3, -2), (2, 0), (5, -2)]
        assert is_tileable(IntMatrix([[2, 3], [1, 1]]), dists)
        assert not is_tileable(IntMatrix([[2, 3], [1, 2]]), dists)
        assert not is_tileable(IntMatrix.identity(2), dists)

    def test_tileable_implies_legal_for_nonzero(self):
        dists = [(3, -2), (2, 0), (5, -2)]
        for t in bounded_unimodular_matrices(2, 2):
            if is_tileable(t, dists):
                transformed = transformed_distances(t, dists)
                assert all(any(v != 0 for v in d) for d in transformed)
                assert is_legal(t, dists)

    def test_ordering_distances_example8(self):
        prog = parse_program(EX8)
        distances = sorted(ordering_distances(prog, "X"))
        for d in [(2, 0), (3, -2), (5, -2)]:  # the paper's printed set
            assert d in distances
        # The extra vectors are far endpoints of the same families.
        for d1, d2 in distances:
            assert 2 * d1 + 5 * d2 in (-4, 0, 4)

    def test_ordering_excludes_input(self):
        prog = parse_program("for i = 1 to 9 { B[0] = A[i] + A[i-1] }")
        assert ordering_distances(prog, "A") == []


class TestElementary:
    def test_interchange(self):
        assert interchange(3, 0, 2) == IntMatrix([[0, 0, 1], [0, 1, 0], [1, 0, 0]])

    def test_reversal(self):
        assert reversal(2, 1) == IntMatrix([[1, 0], [0, -1]])

    def test_skew(self):
        assert skew(2, 1, 0, 2) == IntMatrix([[1, 0], [2, 1]])
        with pytest.raises(ValueError):
            skew(2, 0, 0, 1)

    def test_signed_permutations_counts(self):
        assert len(list(signed_permutations(2))) == 8
        assert len(list(signed_permutations(3))) == 48
        for t in signed_permutations(2):
            assert is_unimodular(t)

    @given(st.integers(1, 2))
    @settings(max_examples=4, deadline=None)
    def test_bounded_unimodular_all_unimodular(self, bound):
        count = 0
        for t in bounded_unimodular_matrices(2, bound):
            assert t.det() in (1, -1)
            count += 1
        assert count > 0

    def test_bounded_unimodular_3d_contains_identity(self):
        assert IntMatrix.identity(3) in set(bounded_unimodular_matrices(3, 1))


class TestCompletion:
    def test_paper_example8_completion(self):
        t = complete_first_row_2d(2, 3, [(3, -2), (2, 0), (5, -2)])
        assert t == IntMatrix([[2, 3], [1, 1]])
        assert is_tileable(t, [(3, -2), (2, 0), (5, -2)])

    def test_non_coprime_rejected(self):
        assert complete_first_row_2d(2, 4, []) is None

    def test_first_row_violation_rejected(self):
        # (1, 0) against distance (-1, ...) can never be tileable... use a
        # row whose own dot is negative.
        assert complete_first_row_2d(0, 1, [(1, -1)]) is None

    def test_infeasible_zero_slope(self):
        # slope 0 and negative base in both determinant families.
        assert complete_first_row_2d(1, 1, [(1, -1), (-1, 1)]) is None

    @given(st.integers(-6, 6), st.integers(-6, 6))
    @settings(max_examples=80, deadline=None)
    def test_completion_unimodular_and_tileable(self, a, b):
        dists = [(1, 0), (0, 1), (2, -1)]
        t = complete_first_row_2d(a, b, dists)
        if math.gcd(a, b) != 1:
            assert t is None
            return
        if any(a * d1 + b * d2 < 0 for d1, d2 in dists):
            assert t is None
            return
        assert t is not None
        assert t.row(0) == (a, b)
        assert is_unimodular(t)
        assert is_tileable(t, dists)

    def test_complete_rows_legal_embedding(self):
        t = complete_rows_legal([[3, 0, 1], [0, 1, 1]], [(1, 3, -3)])
        assert t is not None
        assert is_unimodular(t)
        assert all(v >= 0 for v in t.apply((1, 3, -3)))

    def test_complete_rows_legal_negation_path(self):
        # Leading rows annihilate the distance; appended row needs its
        # sign fixed.
        t = complete_rows_legal([[1, 0, 1, 0], [0, 1, 0, 1]], [(1, 0, -1, 0)])
        assert t is not None
        assert all(v >= 0 for v in t.apply((1, 0, -1, 0)))

    def test_complete_rows_legal_dependent_rows(self):
        assert complete_rows_legal([[1, 2], [2, 4]], []) is None


class TestSearch2D:
    def test_example7_reaches_one(self):
        prog = parse_program(EX7)
        result = search_mws_2d(prog, "X")
        assert result.exact_mws == 1
        assert is_unimodular(result.transformation)

    def test_example8_matches_paper(self):
        prog = parse_program(EX8)
        result = search_mws_2d(prog, "X")
        assert result.exact_mws == 21  # the paper's actual minimum
        assert result.estimated_mws == 22  # the paper's estimate
        dists = [(3, -2), (2, 0), (5, -2)]
        assert is_tileable(result.transformation, dists)

    def test_search_respects_legality(self):
        prog = parse_program(EX8)
        result = search_mws_2d(prog, "X")
        assert is_legal(result.transformation, ordering_distances(prog, "X"))

    def test_wrong_depth_rejected(self):
        prog = parse_program("for i = 1 to 5 { A[i] = A[i-1] }")
        with pytest.raises(ValueError):
            search_mws_2d(prog, "A")

    def test_unknown_array(self):
        prog = parse_program(EX7)
        with pytest.raises(KeyError):
            search_mws_2d(prog, "Z")

    def test_never_worse_than_identity(self):
        prog = parse_program(EX8)
        result = search_mws_2d(prog, "X")
        assert result.exact_mws <= max_window_size(prog, "X")


class TestSearch3D:
    def test_example10_embedding_wins(self):
        prog = parse_program(
            """
            for i = 1 to 10 {
              for j = 1 to 20 {
                for k = 1 to 30 {
                  B[0] = A[3*i + k][j + k]
                }
              }
            }
            """
        )
        result = search_mws_3d(prog, "A")
        assert result.exact_mws == 1
        # First two rows are the access matrix (Section 4.3 construction).
        assert result.transformation.row(0) == (3, 0, 1)
        assert result.transformation.row(1) == (0, 1, 1)

    def test_wrong_depth_rejected(self):
        prog = parse_program(EX7)
        with pytest.raises(ValueError):
            search_mws_3d(prog, "X")


class TestExhaustive:
    def test_agrees_with_2d_search_on_example7(self):
        # The winning matrix [[2, -3], [1, -1]] has an entry of magnitude
        # 3, so the bound must reach it.
        prog = parse_program(EX7)
        result = exhaustive_search(prog, "X", bound=3)
        assert result.exact_mws == 1

    def test_tileable_only_flag(self):
        prog = parse_program(EX8)
        tiled = exhaustive_search(prog, "X", bound=2, tileable_only=True)
        loose = exhaustive_search(prog, "X", bound=2, tileable_only=False)
        assert loose.exact_mws <= tiled.exact_mws


class TestBaselines:
    def test_eisenbeis_example7(self):
        prog = parse_program(EX7)
        result = eisenbeis_search(prog, "X")
        assert result.exact_mws == 34  # paper reports 36 with their metric
        # Compound transformations beat interchange+reversal by 34x here.
        assert search_mws_2d(prog, "X").exact_mws < result.exact_mws

    def test_eisenbeis_respects_legality(self):
        prog = parse_program(EX8)
        result = eisenbeis_search(prog, "X")
        assert is_legal(result.transformation, ordering_distances(prog, "X"))

    def test_li_pingali_fails_on_example8(self):
        prog = parse_program(EX8)
        assert li_pingali_transformation(prog, "X") is None

    def test_li_pingali_succeeds_without_flow(self):
        prog = parse_program(EX7)  # X is read-only: no ordering constraints
        t = li_pingali_transformation(prog, "X")
        assert t is not None
        assert is_unimodular(t)
        assert max_window_size(prog, "X", t) <= 2

    def test_li_pingali_nonuniform_rejected(self):
        prog = parse_program(
            "for i = 1 to 5 { for j = 1 to 5 { A[3*i + 7*j] = A[4*i - 3*j] } }"
        )
        with pytest.raises(ValueError):
            li_pingali_transformation(prog, "A")


class TestTiling:
    def test_fully_permutable(self):
        prog = parse_program(
            "for i = 1 to 6 { for j = 1 to 6 { A[i][j] = A[i-1][j] + A[i][j-1] } }"
        )
        assert is_fully_permutable(prog)

    def test_not_fully_permutable(self):
        prog = parse_program(
            "for i = 1 to 6 { for j = 1 to 6 { A[i][j] = A[i-1][j+1] } }"
        )
        assert not is_fully_permutable(prog)

    def test_footprint_monotone(self):
        prog = parse_program(
            "for i = 1 to 8 { for j = 1 to 8 { A[i][j] = A[i-1][j] } }"
        )
        f2 = tile_footprint(prog, (2, 2))
        f4 = tile_footprint(prog, (4, 4))
        assert f2 < f4

    def test_footprint_rank_check(self):
        prog = parse_program("for i = 1 to 4 { A[i] = 1 }")
        with pytest.raises(ValueError):
            tile_footprint(prog, (2, 2))

    def test_pick_tile_size(self):
        prog = parse_program(
            "for i = 1 to 16 { for j = 1 to 16 { A[i][j] = A[i-1][j] } }"
        )
        size = pick_tile_size(prog, capacity=40, max_size=16)
        footprint = tile_footprint(prog, size)
        assert footprint <= 40
        bigger = (size[0] + 1,) * 2
        if bigger[0] <= 16:
            assert tile_footprint(prog, bigger) > 40

    def test_pick_tile_size_tiny_capacity(self):
        prog = parse_program(
            "for i = 1 to 8 { for j = 1 to 8 { A[i][j] = A[i-1][j] } }"
        )
        assert pick_tile_size(prog, capacity=1) == (1, 1)

    def test_footprint_under_skew_counts_partial_corner_tiles(self):
        """Regression: the worst tile under a skew is a *partial* corner
        tile whose footprint the old implementation read off the first
        full tile instead.  For sor under T=[[1,0],[1,1]] the 3x3 tile
        grid has a corner cell touching 21 distinct words, not the 16 a
        full interior tile touches — the footprint must report the true
        per-tile maximum or the capacity feasibility check under-books
        the buffer."""
        from repro.kernels import sor

        skew = IntMatrix([[1, 0], [1, 1]])
        program = sor(32)
        assert tile_footprint(program, (3, 3), skew) == 21
