"""Joint (transformation, tile, placement) hierarchy search.

The search must equal a from-scratch brute force that re-enumerates the
whole configuration space with its own cost arithmetic; pruned and
exhaustive runs must return the *same plan* (the prunes are admissible);
journal records and obs counters must reconcile with the result's own
numbers; and store round-trips must be exact with corrupt records
degrading to recomputes.
"""

from __future__ import annotations

import itertools
import math

import pytest

from repro import obs
from repro.ir import parse_program
from repro.kernels import matmult, sor, two_point
from repro.linalg import IntMatrix
from repro.memory import MemoryHierarchy, MemoryTier
from repro.store import ResultStore
from repro.transform import (
    HierarchyPlan,
    default_candidates,
    journal,
    search_hierarchy,
    tile_candidates,
    tile_footprints,
)

ANTIDIAG = parse_program(
    "for i = 1 to 6 { for j = 1 to 6 { A[i][j] = A[i - 1][j + 1] } }",
    name="antidiag",
)


def _stack(*caps: int, e_back: float = 200.0) -> MemoryHierarchy:
    tiers = tuple(
        MemoryTier(f"t{k}", cap, 1.0 + k, 5.0 + 5.0 * k)
        for k, cap in enumerate(caps)
    )
    return MemoryHierarchy(name="test", tiers=tiers, offchip_energy_pj=e_back)


def _brute_force(program, hierarchy, candidates, max_tile=64):
    """Independent re-enumeration of the whole space with its own cost
    arithmetic; returns (best_energy, flat_energy)."""
    arrays = sorted(program.arrays)
    iterations = math.prod(program.nest.trip_counts)
    accesses = {}
    for ref in program.references:
        accesses[ref.array] = accesses.get(ref.array, 0) + iterations
    best = flat = None
    for t in candidates:
        for tile in tile_candidates(program, t, max_tile):
            fp = tile_footprints(program, tile, t)
            traffic = (
                sum(fp.fetch_words.values())
                + sum(fp.writeback_words.values())
            ) * hierarchy.offchip_energy_pj
            for placement in itertools.product(
                range(hierarchy.depth), repeat=len(arrays)
            ):
                used = [0] * hierarchy.depth
                for array, k in zip(arrays, placement):
                    used[k] += fp.per_array[array]
                if any(
                    u > tier.capacity_words
                    for u, tier in zip(used, hierarchy.tiers)
                ):
                    continue
                energy = traffic + sum(
                    accesses[a] * hierarchy.tiers[k].energy_pj
                    for a, k in zip(arrays, placement)
                )
                if best is None or energy < best:
                    best = energy
                if all(k == 0 for k in placement):
                    if flat is None or energy < flat:
                        flat = energy
    return best, flat


class TestTileCandidates:
    def test_permutable_doubling_squares_plus_full_box(self):
        tiles = tile_candidates(matmult(6))
        assert tiles[-1] == (6, 6, 6)
        assert (1, 1, 1) in tiles
        assert (2, 2, 2) in tiles
        assert (4, 4, 4) in tiles
        assert len(tiles) == len(set(tiles))  # deduped

    def test_clipped_per_axis(self):
        program = parse_program(
            "for i = 1 to 16 { for j = 1 to 3 { A[i][j] = A[i][j] } }"
        )
        tiles = tile_candidates(program)
        assert (4, 3) in tiles  # j axis clips at its trip count
        assert all(tile[1] <= 3 for tile in tiles)

    def test_non_permutable_keeps_order_preserving_tiles_only(self):
        assert tile_candidates(ANTIDIAG) == [(1, 1), (6, 6)]

    def test_max_tile_cap(self):
        tiles = tile_candidates(matmult(6), max_tile=2)
        assert max(max(t) for t in tiles[:-1]) <= 2


class TestPlan:
    def test_properties_and_describe(self):
        plan = HierarchyPlan(
            transformation=None,
            tile=(2, 2),
            placement=(("A", 1), ("B", 0)),
            access_energy_pj=100.0,
            traffic_energy_pj=40.0,
            fetch_words=10,
            writeback_words=6,
        )
        assert plan.energy_pj == 140.0
        assert plan.offchip_words == 16
        assert plan.placement_map == {"A": 1, "B": 0}
        text = plan.describe(_stack(4, 8))
        assert "A->t1" in text and "B->t0" in text
        assert "T=native" in text and "tile=(2, 2)" in text


class TestBruteForceParity:
    """The cascade equals an independent exhaustive re-enumeration."""

    @pytest.mark.parametrize(
        "program,caps",
        [
            (matmult(6), (40, 200)),
            (matmult(6), (120,)),
            (two_point(16), (8, 64)),
            (sor(8), (10, 30, 100)),
            (ANTIDIAG, (5, 40)),
        ],
        ids=["matmult-2tier", "matmult-1tier", "2point", "sor-3tier", "antidiag"],
    )
    def test_best_and_flat_match_brute_force(self, program, caps):
        hierarchy = _stack(*caps)
        candidates = default_candidates(program)
        result = search_hierarchy(program, hierarchy, candidates)
        brute_best, brute_flat = _brute_force(program, hierarchy, candidates)
        assert result.best.energy_pj == pytest.approx(brute_best)
        assert result.flat.energy_pj == pytest.approx(brute_flat)

    def test_joint_space_contains_flat_space(self):
        result = search_hierarchy(matmult(6), _stack(40, 200))
        assert result.best.energy_pj <= result.flat.energy_pj
        assert all(k == 0 for _, k in result.flat.placement)

    def test_split_placement_beats_flat_when_tier0_is_tight(self):
        # 8x8 operands are 64 words each; 100 words of tier 0 cannot
        # hold all three at the full box, but tier 1 can absorb two.
        result = search_hierarchy(
            matmult(8), _stack(100, 400), candidates=[None]
        )
        assert result.best.energy_pj < result.flat.energy_pj
        assert any(k != 0 for _, k in result.best.placement)

    def test_floor_is_admissible(self):
        for program in (matmult(6), two_point(16)):
            result = search_hierarchy(program, _stack(40, 200))
            assert result.floor_energy_pj <= result.best.energy_pj + 1e-9

    def test_infeasible_stack_raises(self):
        # Even a unit tile of matmult touches 3 words; 1+1 cannot fit.
        with pytest.raises(ValueError, match="no feasible plan"):
            search_hierarchy(matmult(4), _stack(1, 1), candidates=[None])


class TestCascadeParity:
    """prune=True and prune=False return identical winners."""

    @pytest.mark.parametrize(
        "program,caps",
        [(matmult(6), (40, 200)), (sor(8), (10, 30)), (two_point(16), (8, 64))],
        ids=["matmult", "sor", "2point"],
    )
    def test_same_plan_both_modes(self, program, caps):
        hierarchy = _stack(*caps)
        candidates = default_candidates(program)
        pruned = search_hierarchy(program, hierarchy, candidates, prune=True)
        full = search_hierarchy(program, hierarchy, candidates, prune=False)
        assert pruned.best == full.best
        assert pruned.flat == full.flat
        assert pruned.method == "cascade"
        assert full.method == "exhaustive"
        assert full.pruned == 0
        assert pruned.evaluated <= full.evaluated


class TestJournalAndCounters:
    def test_journal_reconciles_with_result(self):
        program = sor(8)
        observer = obs.enable()
        jr = journal.enable()
        try:
            result = search_hierarchy(program, _stack(10, 30))
        finally:
            journal.disable()
            obs.disable()
        counts = jr.counts()
        records = jr.by_stage("hierarchy")
        assert counts["hierarchy"] == len(records)
        assert counts["hierarchy_pruned"] == result.pruned
        statuses = {r.status for r in records}
        assert statuses <= {"pruned", "computed"}
        counters = observer.summary().get("counters", {})
        assert counters.get("search.hierarchy.pruned", 0) == result.pruned
        assert counters["search.hierarchy.evaluated"] == result.evaluated
        assert counters["search.hierarchy.configs"] == result.configs
        assert counters["search.hierarchy.lb_evals"] == 2

    def test_pruned_records_carry_reasons(self):
        jr = journal.enable()
        try:
            search_hierarchy(sor(8), _stack(10, 30))
        finally:
            journal.disable()
        reasons = {
            r.reason for r in jr.by_stage("hierarchy") if r.status == "pruned"
        }
        assert all(
            r.startswith(("hierarchy_floor", "hierarchy_tile_lb"))
            for r in reasons
        )


class TestStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        program = matmult(6)
        hierarchy = _stack(40, 200)
        first = search_hierarchy(program, hierarchy, store=store)
        second = search_hierarchy(program, hierarchy, store=store)
        assert first.method == "cascade"
        assert second.method == "store"
        assert second.best == first.best
        assert second.flat == first.flat
        assert second.bound_words == first.bound_words
        assert second.floor_energy_pj == first.floor_energy_pj

    def test_key_discriminates_hierarchy_and_candidates(self, tmp_path):
        store = ResultStore(tmp_path)
        program = matmult(6)
        search_hierarchy(program, _stack(40, 200), store=store)
        other = search_hierarchy(program, _stack(60, 200), store=store)
        assert other.method == "cascade"  # different stack, fresh compute
        narrowed = search_hierarchy(
            program, _stack(40, 200), candidates=[None], store=store
        )
        assert narrowed.method == "cascade"

    def test_corrupt_record_degrades_to_recompute(self, tmp_path):
        from repro.transform.hierarchy_search import _store_key

        store = ResultStore(tmp_path)
        program = matmult(6)
        hierarchy = _stack(40, 200)
        key = _store_key(program, hierarchy, [None], 64)
        store.put("hierarchy", key, {"program": "matmult", "best": "junk"})
        observer = obs.enable()
        try:
            result = search_hierarchy(
                program, hierarchy, candidates=[None], store=store
            )
        finally:
            obs.disable()
        assert result.method == "cascade"
        counters = observer.summary().get("counters", {})
        assert counters.get("store.corrupt", 0) == 1
        healed = search_hierarchy(
            program, hierarchy, candidates=[None], store=store
        )
        assert healed.method == "store"
        assert healed.best == result.best

    def test_active_journal_bypasses_store(self, tmp_path):
        store = ResultStore(tmp_path)
        program = matmult(6)
        hierarchy = _stack(40, 200)
        search_hierarchy(program, hierarchy, candidates=[None], store=store)
        jr = journal.enable()
        try:
            replayed = search_hierarchy(
                program, hierarchy, candidates=[None], store=store
            )
        finally:
            journal.disable()
        assert replayed.method == "cascade"  # recomputed, not served
        assert jr.by_stage("hierarchy")  # and journaled
