"""Validation of the numeric environment knobs and the workers count.

ISSUE 5 satellites: ``dense_budget()``, ``clip_budget()`` and
``stream_chunk()`` all read their env var through the shared
:func:`repro.envutil.env_int` helper, so a typo'd value fails fast with
the variable's name in the message, and zero/negative budgets — which
used to silently disable dense mode or tier-2 pruning — are rejected.
Negative ``workers`` counts are rejected at the search entry point
instead of surfacing as an opaque ``ProcessPoolExecutor`` error.
"""

from __future__ import annotations

import pytest

from repro.envutil import env_int
from repro.estimation.bounds import CLIP_BUDGET_ENV, DEFAULT_CLIP_BUDGET, clip_budget
from repro.window.fast import DEFAULT_DENSE_BUDGET, DENSE_BUDGET_ENV, dense_budget
from repro.window.streaming import CHUNK_ENV, DEFAULT_CHUNK, stream_chunk

KNOBS = [
    (DENSE_BUDGET_ENV, dense_budget, DEFAULT_DENSE_BUDGET),
    (CLIP_BUDGET_ENV, clip_budget, DEFAULT_CLIP_BUDGET),
    (CHUNK_ENV, stream_chunk, DEFAULT_CHUNK),
]


class TestEnvInt:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert env_int("REPRO_TEST_KNOB", 42) == 42

    def test_valid_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "17")
        assert env_int("REPRO_TEST_KNOB", 42) == 17

    def test_garbage_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "lots")
        with pytest.raises(ValueError, match="REPRO_TEST_KNOB.*'lots'"):
            env_int("REPRO_TEST_KNOB", 42)

    def test_below_minimum_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "3")
        with pytest.raises(ValueError, match="REPRO_TEST_KNOB must be >= 8"):
            env_int("REPRO_TEST_KNOB", 42, minimum=8)

    def test_minimum_is_inclusive(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "8")
        assert env_int("REPRO_TEST_KNOB", 42, minimum=8) == 8


@pytest.mark.parametrize(
    "env_name,knob,default", KNOBS, ids=[k[0] for k in KNOBS]
)
class TestBudgetKnobs:
    def test_default_when_unset(self, monkeypatch, env_name, knob, default):
        monkeypatch.delenv(env_name, raising=False)
        assert knob() == default

    def test_override(self, monkeypatch, env_name, knob, default):
        monkeypatch.setenv(env_name, "1234")
        assert knob() == 1234

    def test_garbage_raises_with_name(self, monkeypatch, env_name, knob, default):
        monkeypatch.setenv(env_name, "not-a-number")
        with pytest.raises(ValueError, match=env_name):
            knob()

    @pytest.mark.parametrize("bad", ["0", "-1", "-4096"])
    def test_zero_and_negative_rejected(
        self, monkeypatch, env_name, knob, default, bad
    ):
        monkeypatch.setenv(env_name, bad)
        with pytest.raises(ValueError, match=f"{env_name} must be >= 1"):
            knob()


class TestNegativeWorkers:
    def test_resolve_workers_rejects_negative(self):
        from repro.transform.search import _resolve_workers

        with pytest.raises(ValueError, match="workers must be >= 0.*-2"):
            _resolve_workers(-2)

    def test_resolve_workers_accepts_zero_and_none(self):
        from repro.transform.search import _resolve_workers

        assert _resolve_workers(0) == 0
        assert _resolve_workers(3) == 3
        assert _resolve_workers(None) >= 1

    def test_evaluate_exact_rejects_negative_workers(self):
        from repro.ir import parse_program
        from repro.transform.search import evaluate_exact

        program = parse_program(
            "for i = 1 to 4 { for j = 1 to 4 { A[i][j] = A[i][j] } }"
        )
        with pytest.raises(ValueError, match="workers must be >= 0"):
            evaluate_exact(program, [None], workers=-1)

    def test_search_rejects_negative_workers(self):
        from repro.ir import parse_program
        from repro.transform.search import search_mws_2d

        program = parse_program(
            "for i = 1 to 8 { for j = 1 to 8 { X[i + j] = X[i + j + 1] } }"
        )
        with pytest.raises(ValueError, match="workers must be >= 0"):
            search_mws_2d(program, "X", workers=-4)
