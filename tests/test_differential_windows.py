"""Differential window testing, re-expressed over the oracle registry.

The cross-engine agreement and paper-invariant checks now live in
:mod:`repro.check.oracles` (``engines-agree-2d/-3d``,
``mws-bounded-by-distinct``, ``offset-translation-invariance``); this
module drives those oracles over a deterministic seed range via
:func:`tests.conftest.assert_oracle`, so a failure shrinks itself and
prints a ``repro check --replay`` command.

Checks with no oracle counterpart (touched-multiset preservation,
read-only def-use domination) remain as direct property tests.

Case count: ``REPRO_DIFF_CASES`` (default 200) seeds, spread over the
oracles; the base seed honors ``REPRO_FUZZ_SEED``.
"""

from __future__ import annotations

import os

import pytest

from tests.conftest import assert_oracle, fuzz_seeds

DIFF_CASES = int(os.environ.get("REPRO_DIFF_CASES", "200"))

_PER_ORACLE = max(1, DIFF_CASES // 4)


@pytest.mark.parametrize("seed", fuzz_seeds(_PER_ORACLE, salt=1))
def test_engines_agree_2d(seed, tmp_path):
    assert_oracle("engines-agree-2d", seed, tmp_path)


@pytest.mark.parametrize("seed", fuzz_seeds(_PER_ORACLE, salt=2))
def test_engines_agree_3d(seed, tmp_path):
    assert_oracle("engines-agree-3d", seed, tmp_path)


@pytest.mark.parametrize("seed", fuzz_seeds(_PER_ORACLE // 2, salt=3))
def test_mws_bounded_by_distinct(seed, tmp_path):
    assert_oracle("mws-bounded-by-distinct", seed, tmp_path)


@pytest.mark.parametrize("seed", fuzz_seeds(_PER_ORACLE // 2, salt=4))
def test_offset_translation_invariance(seed, tmp_path):
    assert_oracle("offset-translation-invariance", seed, tmp_path)


@pytest.mark.parametrize("seed", fuzz_seeds(_PER_ORACLE // 2, salt=5))
def test_total_window_agrees(seed, tmp_path):
    assert_oracle("total-window-agrees", seed, tmp_path)


# ----------------------------------------------------------------------
# direct properties without an oracle counterpart
# ----------------------------------------------------------------------

def _transformed_program(seed):
    from repro.check.oracles import _seed_transformation
    from repro.ir.generate import GeneratorConfig, random_program

    cfg = GeneratorConfig(depth=2, min_trip=2, max_trip=6, max_coeff=3)
    program = random_program(seed, cfg)
    return program, _seed_transformation(program, seed)


@pytest.mark.parametrize("seed", fuzz_seeds(max(10, DIFF_CASES // 8), salt=6))
def test_transformation_preserves_touched_multiset(seed):
    """A unimodular transformation reorders iterations; the multiset of
    touched elements per array is untouched."""
    program, t = _transformed_program(seed)
    order = sorted(program.nest.iterate(), key=t.apply)
    for array in program.arrays:
        refs = program.refs_to(array)
        native = sorted(
            ref.element(point) for point in program.nest.iterate() for ref in refs
        )
        transformed = sorted(
            ref.element(point) for point in order for ref in refs
        )
        assert native == transformed


@pytest.mark.parametrize("seed", fuzz_seeds(max(10, DIFF_CASES // 10), salt=7))
def test_readonly_def_use_dominates_window(seed):
    """For read-only arrays def-use liveness starts at time 0, so its
    peak can never undercut the window's (the paper's related-work
    argument, checked quantitatively)."""
    from repro.ir.generate import GeneratorConfig, random_program
    from repro.window.fast import max_window_size_fast
    from repro.window.zhao_malik import def_use_peak

    cfg = GeneratorConfig(depth=2, min_trip=2, max_trip=6, allow_writes=False)
    program = random_program(seed, cfg)
    for array in program.arrays:
        assert def_use_peak(program, array) >= max_window_size_fast(program, array)
