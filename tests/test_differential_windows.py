"""Differential-testing harness for the three window implementations.

Randomized programs (bounded depth/trips, seeded — deterministic in CI)
must produce the *same* MWS from:

* ``repro.window.simulator`` — the pure-Python event-dict sweep,
* ``repro.window.fast`` — the vectorized numpy engine,
* ``repro.window.zhao_malik.max_window_size_zhao_malik`` — the sorted
  two-pointer interval sweep,

under both the native iteration order and transformed orders (legal
signed permutations and random bounded unimodular matrices) — the
transformed-order paths the per-example equality tests skip.

Alongside the differential checks, the paper's invariants as property
tests:

* MWS <= number of distinct elements touched (``A_d``),
* MWS is invariant under access-preserving relabeling (array renames,
  statement relabeling, global offset translation),
* a unimodular transformation preserves the multiset of touched
  elements.

Case count: ``REPRO_DIFF_CASES`` (default 200) seeds spread over 2-deep
and 3-deep generator configurations; CI quick mode runs the default.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.ir import NestBuilder
from repro.ir.generate import GeneratorConfig, random_program
from repro.ir.program import Program
from repro.linalg import IntMatrix
from repro.transform.elementary import (
    bounded_unimodular_matrices,
    signed_permutations,
)
from repro.window.fast import max_window_size_fast
from repro.window.simulator import max_window_size_reference
from repro.window.zhao_malik import def_use_peak, max_window_size_zhao_malik

DIFF_CASES = int(os.environ.get("REPRO_DIFF_CASES", "200"))

# Half the budget on 2-deep nests, half on 3-deep; trips stay small so a
# case simulates in milliseconds and the full run fits CI quick mode.
_CONFIGS = {
    2: GeneratorConfig(depth=2, min_trip=2, max_trip=6, max_coeff=3),
    3: GeneratorConfig(depth=3, min_trip=2, max_trip=4, max_coeff=2),
}
CASES = [
    (depth, seed)
    for depth in (2, 3)
    for seed in range(DIFF_CASES // 2)
]


def _program(depth: int, seed: int) -> Program:
    return random_program(seed, _CONFIGS[depth])


def _some_transformation(program: Program, seed: int) -> IntMatrix:
    """A deterministic pseudo-random unimodular transformation.

    Drawn from signed permutations plus (for 2-deep nests) skewed
    bounded unimodular matrices, so the transformed-order code paths of
    all three implementations get exercised with non-trivial orders —
    legality is irrelevant for the differential check (any unimodular
    reordering must still agree across implementations).
    """
    rng = random.Random(seed * 7919 + program.nest.depth)
    pool = list(signed_permutations(program.nest.depth))
    if program.nest.depth == 2:
        pool.extend(
            t for t in bounded_unimodular_matrices(2, 1) if not t.is_identity()
        )
    return pool[rng.randrange(len(pool))]


@pytest.mark.parametrize("depth,seed", CASES)
def test_three_implementations_agree(depth, seed):
    program = _program(depth, seed)
    t = _some_transformation(program, seed)
    for array in program.arrays:
        for transformation in (None, t):
            reference = max_window_size_reference(program, array, transformation)
            fast = max_window_size_fast(program, array, transformation)
            zm = max_window_size_zhao_malik(program, array, transformation)
            assert reference == fast == zm, (
                f"seed={seed} depth={depth} array={array} "
                f"T={None if transformation is None else transformation.rows}: "
                f"reference={reference} fast={fast} zhao_malik={zm}\n{program}"
            )


@pytest.mark.parametrize("depth,seed", CASES[::4])
def test_mws_bounded_by_distinct_elements(depth, seed):
    """Paper invariant: the window can never hold more than A_d elements."""
    from repro.estimation.exact import exact_distinct_accesses

    program = _program(depth, seed)
    for array in program.arrays:
        mws = max_window_size_fast(program, array)
        distinct = exact_distinct_accesses(program, array)
        assert mws <= distinct


@pytest.mark.parametrize("depth,seed", CASES[::4])
def test_mws_invariant_under_relabeling(depth, seed):
    """Renaming arrays/statements and translating every offset by a
    constant preserve the access pattern, hence the MWS."""
    program = _program(depth, seed)
    arrays = program.arrays
    shift = {name: 3 + k for k, name in enumerate(arrays)}

    builder = NestBuilder("relabeled")
    for loop in program.nest.loops:
        builder.loop(f"r_{loop.index}", loop.lower, loop.upper)
    for si, stmt in enumerate(program.statements):
        reads = [
            (
                f"{ref.array}_renamed",
                ref.access.to_lists(),
                [o + shift[ref.array] for o in ref.offset],
            )
            for ref in stmt.references
            if not ref.is_write
        ]
        writes = [
            (
                f"{ref.array}_renamed",
                ref.access.to_lists(),
                [o + shift[ref.array] for o in ref.offset],
            )
            for ref in stmt.references
            if ref.is_write
        ]
        if writes:
            builder.statement(f"R{si}", write=writes[0], reads=reads)
        else:
            builder.use(f"R{si}", *reads)
    relabeled = builder.build()

    for array in arrays:
        original = max_window_size_fast(program, array)
        renamed = max_window_size_fast(relabeled, f"{array}_renamed")
        assert original == renamed


@pytest.mark.parametrize("depth,seed", CASES[::4])
def test_transformation_preserves_touched_multiset(depth, seed):
    """A unimodular transformation reorders iterations; the multiset of
    touched elements per array is untouched."""
    program = _program(depth, seed)
    t = _some_transformation(program, seed)
    order = sorted(program.nest.iterate(), key=t.apply)
    for array in program.arrays:
        refs = program.refs_to(array)
        native = sorted(
            ref.element(point) for point in program.nest.iterate() for ref in refs
        )
        transformed = sorted(
            ref.element(point) for point in order for ref in refs
        )
        assert native == transformed


@pytest.mark.parametrize("seed", range(max(10, DIFF_CASES // 10)))
def test_readonly_def_use_dominates_window(seed):
    """For read-only arrays def-use liveness starts at time 0, so its
    peak can never undercut the window's (the paper's related-work
    argument, checked quantitatively)."""
    cfg = GeneratorConfig(depth=2, min_trip=2, max_trip=6, allow_writes=False)
    program = random_program(seed, cfg)
    for array in program.arrays:
        assert def_use_peak(program, array) >= max_window_size_fast(program, array)
