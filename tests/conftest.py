"""Shared fuzzing fixtures: one seed source for every randomized test.

All randomized tests derive their seeds from ``FUZZ_SEED`` (the
``REPRO_FUZZ_SEED`` environment variable, default 0) so a failing CI run
is reproduced locally by exporting the same value.  Hypothesis-based
tests run under a derandomized profile for the same reason.

When a fuzz assertion fails, :func:`assert_oracle` shrinks the failing
program and writes a corpus-format JSON repro; the assertion message
prints the exact ``repro check --replay`` command for it.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Base seed for every randomized test, overridable for bisection:
#: ``REPRO_FUZZ_SEED=17 pytest tests/test_properties_deep.py``.
FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))

# ----------------------------------------------------------------------
# tier-1 run ledger: when $REPRO_LEDGER_DIR is set (CI), seal one ledger
# record for the whole pytest session so the test run is attributable
# like any other analysis run.  The context is deliberately NOT
# installed as the global runctx — tests that pin trace/meta formats
# must not see a session-wide run ID leaking into their observers.
# ----------------------------------------------------------------------
_LEDGER_CTX = None


def pytest_configure(config):
    global _LEDGER_CTX
    if not os.environ.get("REPRO_LEDGER_DIR"):
        return
    from repro.obs.runctx import RunContext, new_run_id

    _LEDGER_CTX = RunContext(
        run_id=new_run_id(),
        command="pytest",
        argv=tuple(config.invocation_params.args),
    )


def pytest_sessionfinish(session, exitstatus):
    global _LEDGER_CTX
    if _LEDGER_CTX is None:
        return
    ctx, _LEDGER_CTX = _LEDGER_CTX, None
    from repro.obs import ledger

    sink = ledger.resolve_sink(None)
    ctx.annotate("tests", {
        "collected": getattr(session, "testscollected", 0),
        "failed": getattr(session, "testsfailed", 0),
    })
    ledger.seal_run(ctx, None, sink, status=int(exitstatus))

try:  # optional; the suite must run without hypothesis installed
    from hypothesis import settings

    settings.register_profile(
        "repro", derandomize=True, deadline=None, database=None
    )
    settings.load_profile("repro")
except ImportError:  # pragma: no cover
    pass


def fuzz_seeds(count: int, salt: int = 0) -> list[int]:
    """``count`` deterministic seeds derived from ``FUZZ_SEED``.

    ``salt`` decorrelates call sites so two tests asking for 20 seeds
    don't fuzz the identical programs.
    """
    base = FUZZ_SEED * 1_000_003 + salt * 7919
    return [base + k for k in range(count)]


@pytest.fixture
def fuzz_seed() -> int:
    return FUZZ_SEED


def _repro_dir(tmp_fallback: Path | None = None) -> Path:
    override = os.environ.get("REPRO_CORPUS_DIR")
    if override:
        return Path(override)
    if os.environ.get("REPRO_WRITE_CORPUS") == "1":
        return Path(__file__).parent / "corpus"
    return tmp_fallback or Path(".pytest-repros")


def oracle_failure_message(oracle_name: str, path: Path, detail: str) -> str:
    return (
        f"oracle {oracle_name} violated: {detail}\n"
        f"shrunk repro written to {path}\n"
        f"replay with: PYTHONPATH=src python -m repro check --replay {path}"
    )


def assert_oracle(oracle_name: str, seed: int, tmp_path: Path | None = None) -> None:
    """Run one oracle case; on violation, shrink, persist, and fail.

    The pytest failure message contains the ``repro check --replay``
    command for the shrunk counterexample, so a red fuzz test is
    immediately actionable.
    """
    from repro.check import get_oracle, shrink_case, write_repro

    oracle = get_oracle(oracle_name)
    program = oracle.generate(seed)
    violation = oracle.check(program, seed)
    if violation is None:
        return
    result, violation = shrink_case(oracle, program, seed)
    path = write_repro(
        _repro_dir(tmp_path),
        oracle.name,
        result.program,
        seed,
        violation.detail,
        note=f"shrunk from pytest seed {seed} (REPRO_FUZZ_SEED={FUZZ_SEED})",
    )
    pytest.fail(oracle_failure_message(oracle.name, path, violation.detail))
