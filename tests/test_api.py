"""The :mod:`repro.api` facade (ISSUE 10 tentpole, layer 1).

One entry path for the CLI, the batch runner, and the HTTP service:
request validation, the six-kind dispatch, inline and pooled
evaluation, the shared timeout path (worker reclaimed, slot stays
usable), and warm-request detection against the persistent store.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.api import (
    AnalysisRequest,
    AnalysisService,
    KINDS,
    build_request,
    evaluate_kind,
)
from repro.kernels import kernel_by_name
from repro.store import ResultStore
from repro.transform.search import clear_exact_cache


@pytest.fixture
def observer():
    observer = obs.enable()
    try:
        yield observer
    finally:
        obs.disable()


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_exact_cache()
    yield
    clear_exact_cache()


LOOP = (
    "for i = 1 to 8 { for j = 1 to 8 { "
    "A[i + j] = A[i + j - 1] + 1 } }"
)


# ----------------------------------------------------------------------
# request validation
# ----------------------------------------------------------------------

class TestBuildRequest:
    def test_minimal_kernel_request(self):
        request = build_request({"kind": "mws", "kernel": "sor"})
        assert request.kind == "mws"
        assert request.kernel == "sor"
        assert request.target == "sor"
        assert request.engine is None and request.timeout is None

    def test_kind_defaults_to_analyze(self):
        assert build_request({"kernel": "sor"}).kind == "analyze"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind 'frobnicate'"):
            build_request({"kind": "frobnicate", "kernel": "sor"})

    def test_exactly_one_target_required(self):
        with pytest.raises(ValueError, match="exactly one of"):
            build_request({"kind": "mws"})
        with pytest.raises(ValueError, match="exactly one of"):
            build_request({"kind": "mws", "kernel": "sor", "source": LOOP})

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError, match="must be an object"):
            build_request("sor")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine 'warp'"):
            build_request({"kernel": "sor", "engine": "warp"})

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout must be > 0"):
            build_request({"kernel": "sor", "timeout": 0})
        with pytest.raises(ValueError):
            build_request({"kernel": "sor", "timeout": "soon"})

    def test_knobs_pass_through(self):
        request = build_request({
            "kind": "hierarchy", "source": LOOP, "name": "nest",
            "array": "A", "preset": "cache", "timeout": 2.5,
        })
        assert request.preset == "cache"
        assert request.array == "A"
        assert request.timeout == 2.5
        assert request.target == "nest"


# ----------------------------------------------------------------------
# the six-kind dispatch
# ----------------------------------------------------------------------

class TestEvaluateKind:
    @pytest.fixture(scope="class")
    def program(self):
        return kernel_by_name("2point").build()

    def test_optimize(self, program):
        result = evaluate_kind("optimize", program)
        assert result["mws_after"] <= result["mws_before"]
        assert result["t"]

    def test_search(self, program):
        result = evaluate_kind("search", program)
        assert result["array"] == program.arrays[0]
        assert result["exact"] is not None

    def test_mws(self, program):
        result = evaluate_kind("mws", program, array=program.arrays[0])
        assert result["mws"] is not None

    def test_analyze_covers_every_array(self, program):
        result = evaluate_kind("analyze", program)
        assert set(result["mws"]) == set(program.arrays)
        assert result["mws_total"] is not None
        assert result["footprint"] > 0

    def test_hierarchy_roundtrips_store(self, tmp_path, observer):
        store = ResultStore(tmp_path)
        program = kernel_by_name("2point").build()
        cold = evaluate_kind("hierarchy", program, store=store)
        assert cold["preset"] == "tcm"
        assert cold["tiers_needed"] >= 1
        warm = evaluate_kind("hierarchy", program, store=store)
        assert warm == cold
        assert observer.counters["store.mem.hits"] >= 1

    def test_param(self, program):
        result = evaluate_kind("param", program)
        assert result["array"] == program.arrays[0]
        assert "mws_expr" in result and "distinct_expr" in result

    def test_unknown_kind_raises(self, program):
        with pytest.raises(ValueError, match="unknown kind"):
            evaluate_kind("nope", program)

    def test_kinds_tuple_matches_dispatch(self):
        assert KINDS == (
            "optimize", "search", "mws", "analyze", "hierarchy", "param"
        )


# ----------------------------------------------------------------------
# the service: inline evaluation + warm detection
# ----------------------------------------------------------------------

class TestServiceInline:
    def test_evaluate_kernel_request(self, observer):
        with AnalysisService() as svc:
            response = svc.evaluate(build_request(
                {"kind": "mws", "kernel": "2point"}
            ))
        assert response.ok
        assert response.status == "ok"
        assert response.result["mws"] is not None
        assert response.wall_s > 0
        assert observer.counters["batch.items.ok"] == 1

    def test_evaluate_source_request(self):
        with AnalysisService() as svc:
            response = svc.evaluate(build_request(
                {"kind": "analyze", "source": LOOP, "name": "nest"}
            ))
        assert response.ok
        assert response.target == "nest"
        assert response.result["mws"]["A"] is not None

    def test_evaluate_file_request(self, tmp_path):
        path = tmp_path / "nest.loop"
        path.write_text(LOOP, encoding="utf-8")
        with AnalysisService() as svc:
            response = svc.evaluate(build_request(
                {"kind": "mws", "file": str(path), "array": "A"}
            ))
        assert response.ok

    def test_evaluate_error_is_a_response_not_a_raise(self, observer):
        with AnalysisService() as svc:
            response = svc.evaluate(build_request(
                {"kind": "mws", "kernel": "no_such_kernel"}
            ))
        assert response.status == "error"
        assert "KeyError" in response.error
        assert observer.counters["batch.items.error"] == 1

    def test_response_is_json_ready(self):
        import json

        with AnalysisService() as svc:
            response = svc.evaluate(build_request(
                {"kind": "mws", "kernel": "2point"}
            ))
        json.dumps(response.as_dict())

    def test_warm_request_does_zero_engine_work(self, tmp_path, observer):
        # The acceptance property behind the whole service: compute
        # once, then serve every identical request from the store.
        with AnalysisService(store=tmp_path) as svc:
            request = build_request({"kind": "optimize", "kernel": "2point"})
            cold = svc.evaluate(request)
            assert cold.ok and not cold.warm
            clear_exact_cache()
            engine_calls_after_cold = sum(
                value for name, value in observer.counters.items()
                if name.startswith("engine.") and name.endswith(".calls")
            )
            warm = svc.evaluate(request)
            assert warm.ok and warm.warm
            assert warm.result == cold.result
            engine_calls_after_warm = sum(
                value for name, value in observer.counters.items()
                if name.startswith("engine.") and name.endswith(".calls")
            )
            assert engine_calls_after_warm == engine_calls_after_cold

    def test_store_accepts_path_or_instance(self, tmp_path):
        svc = AnalysisService(store=str(tmp_path))
        assert isinstance(svc.store, ResultStore)
        svc.close()
        store = ResultStore(tmp_path)
        svc = AnalysisService(store=store)
        assert svc.store is store
        svc.close()


# ----------------------------------------------------------------------
# the service: pooled evaluation + the shared timeout path
# ----------------------------------------------------------------------

class TestServicePooled:
    def test_submit_runs_on_pool(self, observer):
        with AnalysisService(workers=1) as svc:
            response = svc.submit(build_request(
                {"kind": "mws", "kernel": "2point"}
            ))
        assert response.ok
        assert response.result["mws"] is not None
        assert observer.counters["batch.items.ok"] == 1

    def test_submit_timeout_reclaims_worker_and_slot_survives(
        self, observer
    ):
        # The ISSUE 10 acceptance bullet: a hanging request times out
        # without consuming a pool slot for subsequent requests.
        with AnalysisService(workers=1) as svc:
            hung = svc.submit(
                build_request({"kind": "mws", "kernel": "2point"}),
                timeout=0.5,
                evaluator=_hang_evaluator,
            )
            assert hung.status == "timeout"
            assert "timed out after 0.5s" in hung.error
            assert observer.counters["batch.worker.reclaimed"] == 1
            assert observer.counters["batch.item.timeout"] == 1
            # The single slot was killed and respawned: the next
            # request on the same one-worker pool must succeed.
            after = svc.submit(build_request(
                {"kind": "mws", "kernel": "2point"}
            ))
            assert after.ok

    def test_submit_error_degrades(self, observer):
        with AnalysisService(workers=1) as svc:
            response = svc.submit(
                build_request({"kind": "mws", "kernel": "2point"}),
                evaluator=_explode_evaluator,
            )
        assert response.status == "error"
        assert "RuntimeError: kaboom" in response.error
        assert observer.counters["batch.items.error"] == 1

    def test_workers_zero_degrades_to_inline(self):
        with AnalysisService(workers=0) as svc:
            response = svc.submit(build_request(
                {"kind": "mws", "kernel": "2point"}
            ))
        assert response.ok

    def test_bad_request_fails_before_pool_spawn(self, observer):
        with AnalysisService(workers=1) as svc:
            response = svc.submit(build_request(
                {"kind": "mws", "kernel": "no_such_kernel"}
            ))
            assert response.status == "error"
            assert svc._pool is None  # nothing hit the pool

    def test_closed_service_rejects_pooled_work(self):
        svc = AnalysisService(workers=1)
        svc.close()
        svc.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit(build_request({"kind": "mws", "kernel": "2point"}))

    def test_batch_delegates_to_run_batch(self, tmp_path):
        with AnalysisService(store=tmp_path) as svc:
            report = svc.batch([
                {"kind": "mws", "kernel": "2point"},
                {"kind": "mws", "kernel": "2point"},
            ])
        assert report.ok
        assert report.deduped_items == 1


# ----------------------------------------------------------------------
# observability read side
# ----------------------------------------------------------------------

class TestServiceReadSide:
    def test_metrics_text(self, observer):
        with AnalysisService() as svc:
            svc.evaluate(build_request({"kind": "mws", "kernel": "2point"}))
            text = svc.metrics_text()
        assert "repro_batch_items_ok_total 1" in text

    def test_metrics_text_empty_without_observer(self):
        with AnalysisService() as svc:
            assert svc.metrics_text() == ""

    def test_compact_and_runs_storeless_are_inert(self):
        with AnalysisService() as svc:
            assert svc.compact() is None
            assert svc.run_record("last") is None
            assert svc.run_ids() == []

    def test_compact_sweeps_the_service_store(self, tmp_path):
        with AnalysisService(store=tmp_path) as svc:
            svc.evaluate(build_request({"kind": "mws", "kernel": "2point"}))
            report = svc.compact()
        assert report.scanned >= 1
        assert report.corrupt_deleted == 0


# Module-level so the service can pickle them to pool workers.
def _hang_evaluator(kind, program, array, engine, store):
    time.sleep(30)


def _explode_evaluator(kind, program, array, engine, store):
    raise RuntimeError("kaboom")
