"""Unit tests for the vectorized window engine's building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import parse_program
from repro.ir.generate import GeneratorConfig, random_program
from repro.linalg import IntMatrix
from repro.window.fast import (
    _ITER_STATE,
    _element_ids,
    _execution_times,
    _iteration_matrix,
    _peak_concurrent,
    _time_keys,
    clear_iteration_cache,
    dense_budget,
    window_deltas,
)


class TestIterationMatrix:
    def test_matches_nest_iterate(self):
        prog = parse_program(
            "for i = 0 to 3 { for j = -1 to 2 { A[i][j] = 1 } }"
        )
        points = _iteration_matrix(prog)
        expected = np.array(list(prog.nest.iterate()))
        assert np.array_equal(points, expected)

    def test_cached(self):
        prog = parse_program("for i = 1 to 4 { A[i] = 1 }")
        assert _iteration_matrix(prog) is _iteration_matrix(prog)

    def test_cache_keyed_by_content_hash(self):
        """The state is cached per Program.signature(), not per object —
        so a pickled clone (what pool workers deserialize) hits the same
        entry instead of re-enumerating per candidate."""
        import pickle

        prog = parse_program("for i = 1 to 4 { A[i] = 1 }")
        _iteration_matrix(prog)
        assert "_iter_matrix_cache" not in vars(prog)
        assert prog.signature() in _ITER_STATE
        clone = pickle.loads(pickle.dumps(prog))
        assert _iteration_matrix(clone) is _iteration_matrix(prog)

    def test_cache_is_bounded(self):
        from repro.window.fast import _ITER_STATE_LIMIT

        clear_iteration_cache()
        for k in range(_ITER_STATE_LIMIT + 5):
            prog = parse_program(f"for i = 1 to {k + 2} {{ A[i] = 1 }}")
            _iteration_matrix(prog)
        assert len(_ITER_STATE) == _ITER_STATE_LIMIT

    def test_overflow_guard_rejects_huge_nests(self):
        """math.prod over Python ints detects what int64 np.prod would
        silently wrap: a nest too large to enumerate densely."""
        prog = parse_program(
            "for i = 1 to 3000000000 { for j = 1 to 3000000000 { "
            "for k = 1 to 3000000000 { A[i] = 1 } } }"
        )
        with pytest.raises(ValueError, match="overflow|iterations"):
            _iteration_matrix(prog)

    @given(st.integers(0, 20_000))
    @settings(max_examples=25, deadline=None)
    def test_matches_on_random(self, seed):
        prog = random_program(seed, GeneratorConfig(max_trip=5, depth=3))
        points = _iteration_matrix(prog)
        expected = np.array(list(prog.nest.iterate()))
        assert np.array_equal(points, expected)


class TestExecutionTimes:
    def test_identity_is_arange(self):
        prog = parse_program("for i = 1 to 4 { for j = 1 to 3 { A[i][j] = 1 } }")
        times = _execution_times(prog, None)
        assert np.array_equal(times, np.arange(12))

    def test_transformed_is_permutation(self):
        prog = parse_program("for i = 1 to 4 { for j = 1 to 3 { A[i][j] = 1 } }")
        t = IntMatrix([[0, 1], [1, 0]])
        times = _execution_times(prog, t)
        assert sorted(times.tolist()) == list(range(12))

    def test_transformed_order_matches_sort(self):
        prog = parse_program("for i = 1 to 4 { for j = 1 to 3 { A[i][j] = 1 } }")
        t = IntMatrix([[1, 1], [0, 1]])
        times = _execution_times(prog, t)
        points = list(prog.nest.iterate())
        by_time = sorted(range(len(points)), key=lambda k: times[k])
        ordered = [t.apply(points[k]) for k in by_time]
        assert ordered == sorted(ordered)

    def test_rejects_non_unimodular(self):
        prog = parse_program("for i = 1 to 4 { A[i] = 1 }")
        with pytest.raises(ValueError):
            _execution_times(prog, IntMatrix([[2]]))


class TestElementIds:
    def test_equal_elements_share_ids(self):
        prog = parse_program("for i = 1 to 6 { B[0] = A[i] + A[i-1] }")
        ids = _element_ids(prog, "A")
        # A[i] at iteration t equals A[i-1] at iteration t+1.
        assert ids[0][0] == ids[1][1]

    def test_distinct_elements_distinct_ids(self):
        prog = parse_program("for i = 1 to 6 { A[i] = 1 }")
        (ids,) = _element_ids(prog, "A")
        assert len(set(ids.tolist())) == 6

    def test_unknown_array(self):
        prog = parse_program("for i = 1 to 4 { A[i] = 1 }")
        with pytest.raises(KeyError):
            _element_ids(prog, "Z")


class TestTimeKeys:
    def test_native_order_is_arange(self):
        prog = parse_program("for i = 1 to 4 { for j = 1 to 3 { A[i][j] = 1 } }")
        assert np.array_equal(_time_keys(prog, None), np.arange(12))

    def test_packed_keys_order_isomorphic_to_ranks(self):
        prog = parse_program(
            "for i = 1 to 5 { for j = -2 to 3 { A[i][j] = 1 } }"
        )
        for rows in ([[0, 1], [1, 0]], [[1, 1], [0, 1]], [[1, -1], [0, 1]],
                     [[2, 1], [1, 1]]):
            t = IntMatrix(rows)
            keys = _time_keys(prog, t)
            ranks = _execution_times(prog, t)
            assert len(set(keys.tolist())) == keys.shape[0]
            assert np.array_equal(np.argsort(keys), np.argsort(ranks))

    def test_rejects_non_unimodular(self):
        prog = parse_program("for i = 1 to 4 { A[i] = 1 }")
        with pytest.raises(ValueError):
            _time_keys(prog, IntMatrix([[2]]))


class TestPeakConcurrent:
    @given(st.lists(st.tuples(st.integers(0, 40), st.integers(1, 30)),
                    max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_matches_dense_sweep(self, raw):
        starts = np.array([s for s, _ in raw], dtype=np.int64)
        ends = np.array([s + d for s, d in raw], dtype=np.int64)
        horizon = int(ends.max()) + 1 if raw else 1
        dense = np.zeros(horizon + 1, dtype=np.int64)
        np.add.at(dense, starts, 1)
        np.add.at(dense, ends, -1)
        expected = int(np.cumsum(dense[:-1]).max(initial=0))
        assert _peak_concurrent(starts, ends) == expected

    def test_empty(self):
        empty = np.array([], dtype=np.int64)
        assert _peak_concurrent(empty, empty) == 0


class TestDenseBudget:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DENSE_BUDGET", raising=False)
        assert dense_budget() == 2**26

    def test_env_override_gates_enumeration(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE_BUDGET", "10")
        clear_iteration_cache()
        prog = parse_program("for i = 1 to 20 { A[i] = 1 }")
        with pytest.raises(ValueError, match="iterations"):
            _iteration_matrix(prog)
        monkeypatch.setenv("REPRO_DENSE_BUDGET", "20")
        assert _iteration_matrix(prog).shape == (20, 1)


class TestWindowDeltas:
    def test_deltas_sum_to_zero(self):
        prog = parse_program(
            "for i = 1 to 8 { X[2*i + 1] = X[2*i + 5] }"
        )
        deltas = window_deltas(prog, "X")
        assert int(deltas.sum()) == 0

    def test_cumsum_nonnegative(self):
        prog = parse_program(
            "for i = 1 to 8 { X[2*i + 1] = X[2*i + 5] }"
        )
        deltas = window_deltas(prog, "X")
        assert (np.cumsum(deltas[:-1]) >= 0).all()
