"""Unit tests for the vectorized window engine's building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import parse_program
from repro.ir.generate import GeneratorConfig, random_program
from repro.linalg import IntMatrix
from repro.window.fast import (
    _ITER_MATRIX_CACHE,
    _element_ids,
    _execution_times,
    _iteration_matrix,
    clear_iteration_cache,
    window_deltas,
)


class TestIterationMatrix:
    def test_matches_nest_iterate(self):
        prog = parse_program(
            "for i = 0 to 3 { for j = -1 to 2 { A[i][j] = 1 } }"
        )
        points = _iteration_matrix(prog)
        expected = np.array(list(prog.nest.iterate()))
        assert np.array_equal(points, expected)

    def test_cached(self):
        prog = parse_program("for i = 1 to 4 { A[i] = 1 }")
        assert _iteration_matrix(prog) is _iteration_matrix(prog)

    def test_cache_lives_off_the_program(self):
        """The matrix is cached in a module-level WeakKeyDictionary, not
        stashed as a Program attribute — so it works for frozen/slotted
        programs and stays out of pickles."""
        import pickle

        prog = parse_program("for i = 1 to 4 { A[i] = 1 }")
        _iteration_matrix(prog)
        assert "_iter_matrix_cache" not in vars(prog)
        assert prog in _ITER_MATRIX_CACHE
        clone = pickle.loads(pickle.dumps(prog))
        assert clone not in _ITER_MATRIX_CACHE

    def test_cache_entry_dies_with_program(self):
        import gc

        clear_iteration_cache()
        prog = parse_program("for i = 1 to 4 { A[i] = 1 }")
        _iteration_matrix(prog)
        assert len(_ITER_MATRIX_CACHE) == 1
        del prog
        gc.collect()
        assert len(_ITER_MATRIX_CACHE) == 0

    def test_overflow_guard_rejects_huge_nests(self):
        """math.prod over Python ints detects what int64 np.prod would
        silently wrap: a nest too large to enumerate densely."""
        prog = parse_program(
            "for i = 1 to 3000000000 { for j = 1 to 3000000000 { "
            "for k = 1 to 3000000000 { A[i] = 1 } } }"
        )
        with pytest.raises(ValueError, match="overflow|iterations"):
            _iteration_matrix(prog)

    @given(st.integers(0, 20_000))
    @settings(max_examples=25, deadline=None)
    def test_matches_on_random(self, seed):
        prog = random_program(seed, GeneratorConfig(max_trip=5, depth=3))
        points = _iteration_matrix(prog)
        expected = np.array(list(prog.nest.iterate()))
        assert np.array_equal(points, expected)


class TestExecutionTimes:
    def test_identity_is_arange(self):
        prog = parse_program("for i = 1 to 4 { for j = 1 to 3 { A[i][j] = 1 } }")
        times = _execution_times(prog, None)
        assert np.array_equal(times, np.arange(12))

    def test_transformed_is_permutation(self):
        prog = parse_program("for i = 1 to 4 { for j = 1 to 3 { A[i][j] = 1 } }")
        t = IntMatrix([[0, 1], [1, 0]])
        times = _execution_times(prog, t)
        assert sorted(times.tolist()) == list(range(12))

    def test_transformed_order_matches_sort(self):
        prog = parse_program("for i = 1 to 4 { for j = 1 to 3 { A[i][j] = 1 } }")
        t = IntMatrix([[1, 1], [0, 1]])
        times = _execution_times(prog, t)
        points = list(prog.nest.iterate())
        by_time = sorted(range(len(points)), key=lambda k: times[k])
        ordered = [t.apply(points[k]) for k in by_time]
        assert ordered == sorted(ordered)

    def test_rejects_non_unimodular(self):
        prog = parse_program("for i = 1 to 4 { A[i] = 1 }")
        with pytest.raises(ValueError):
            _execution_times(prog, IntMatrix([[2]]))


class TestElementIds:
    def test_equal_elements_share_ids(self):
        prog = parse_program("for i = 1 to 6 { B[0] = A[i] + A[i-1] }")
        ids = _element_ids(prog, "A")
        # A[i] at iteration t equals A[i-1] at iteration t+1.
        assert ids[0][0] == ids[1][1]

    def test_distinct_elements_distinct_ids(self):
        prog = parse_program("for i = 1 to 6 { A[i] = 1 }")
        (ids,) = _element_ids(prog, "A")
        assert len(set(ids.tolist())) == 6

    def test_unknown_array(self):
        prog = parse_program("for i = 1 to 4 { A[i] = 1 }")
        with pytest.raises(KeyError):
            _element_ids(prog, "Z")


class TestWindowDeltas:
    def test_deltas_sum_to_zero(self):
        prog = parse_program(
            "for i = 1 to 8 { X[2*i + 1] = X[2*i + 5] }"
        )
        deltas = window_deltas(prog, "X")
        assert int(deltas.sum()) == 0

    def test_cumsum_nonnegative(self):
        prog = parse_program(
            "for i = 1 to 8 { X[2*i + 1] = X[2*i + 5] }"
        )
        deltas = window_deltas(prog, "X")
        assert (np.cumsum(deltas[:-1]) >= 0).all()
