"""Metrics registry, exporters, and observer trace-lifecycle guarantees.

Covers the tentpole metrics layer (gauges, fixed-bucket histograms,
Prometheus / Chrome-tracing exporters) plus the lifecycle satellites:
numpy scalars in span attrs must not crash the JSONL writer, ``flush``
must be idempotent, and the ``atexit`` safety net must complete a trace
when ``obs.disable()`` is forgotten.
"""

from __future__ import annotations

import io
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.obs import core, metrics
from repro.obs.core import Observer
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram

SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(autouse=True)
def obs_disabled():
    obs.disable()
    yield
    obs.disable()


def _events(buf: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buf.getvalue().splitlines()]


class TestHistogram:
    def test_default_buckets_are_powers_of_two(self):
        assert DEFAULT_BUCKETS[0] == 1
        assert DEFAULT_BUCKETS[-1] == 65536
        assert all(b == 2**k for k, b in enumerate(DEFAULT_BUCKETS))

    def test_observe_places_values_in_inclusive_upper_bounds(self):
        hist = Histogram(buckets=(1, 2, 4))
        for value in (1, 2, 3, 4, 5):
            hist.observe(value)
        # le=1 gets {1}, le=2 gets {2}, le=4 gets {3, 4}, +Inf gets {5}.
        assert hist.counts == [1, 1, 2, 1]
        assert hist.count == 5
        assert hist.sum == 15.0

    def test_bulk_weight(self):
        hist = Histogram(buckets=(10,))
        hist.observe(3, n=4)
        assert hist.counts == [4, 0]
        assert hist.count == 4
        assert hist.sum == 12.0

    def test_observe_many(self):
        hist = Histogram(buckets=(1, 2))
        hist.observe_many([1, 1, 2, 9])
        assert hist.counts == [2, 1, 1]

    def test_mean(self):
        hist = Histogram()
        assert hist.mean == 0.0
        hist.observe_many([2, 4])
        assert hist.mean == 3.0

    def test_cumulative_ends_with_total(self):
        hist = Histogram(buckets=(1, 2, 4))
        hist.observe_many([1, 3, 100])
        assert hist.cumulative() == [1, 1, 2, 3]
        assert hist.cumulative()[-1] == hist.count

    def test_dict_round_trip(self):
        hist = Histogram(buckets=(1, 4))
        hist.observe_many([1, 2, 3, 99])
        clone = Histogram.from_dict(hist.as_dict())
        assert clone.as_dict() == hist.as_dict()
        assert clone.buckets == hist.buckets

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_rejects_non_increasing_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1, 1, 2))
        with pytest.raises(ValueError):
            Histogram(buckets=(4, 2))


class TestModuleHelpers:
    def test_disabled_calls_are_no_ops(self):
        assert not obs.enabled()
        obs.gauge("x", 1)
        obs.observe("h", 2)
        obs.observe_many("h", [1, 2])
        observer = obs.enable()
        assert observer.gauges == {}
        assert observer.histograms == {}

    def test_disabled_path_is_one_global_load(self, monkeypatch):
        """While disabled the helpers must bail on the ``None`` check
        before touching any Observer machinery: poison the Observer
        methods and the disabled calls still succeed."""

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("observer touched while disabled")

        monkeypatch.setattr(Observer, "set_gauge", boom)
        monkeypatch.setattr(Observer, "observe_histogram", boom)
        monkeypatch.setattr(Observer, "get_histogram", boom)
        obs.gauge("x", 1)
        obs.observe("h", 2)
        obs.observe_many("h", [1, 2])
        # The same calls while enabled do reach the observer.
        obs.enable()
        with pytest.raises(AssertionError):
            obs.gauge("x", 1)

    def test_mirror_stays_in_sync(self):
        observer = obs.enable()
        assert metrics._observer is observer
        assert core._observer is observer
        obs.disable()
        assert metrics._observer is None
        assert core._observer is None

    def test_gauge_records_latest_value(self):
        observer = obs.enable()
        obs.gauge("liveness.A.peak", 44)
        obs.gauge("liveness.A.peak", 64)
        assert observer.gauges == {"liveness.A.peak": 64.0}

    def test_observe_accumulates(self):
        observer = obs.enable()
        obs.observe("occupancy", 5)
        obs.observe("occupancy", 3, n=2)
        hist = observer.histograms["occupancy"]
        assert hist.count == 3
        assert hist.sum == 11.0
        assert hist.buckets == DEFAULT_BUCKETS

    def test_buckets_fixed_at_first_observation(self):
        observer = obs.enable()
        obs.observe("h", 1, buckets=(1, 2))
        obs.observe("h", 50, buckets=(1, 2, 4, 8, 16, 32, 64))
        assert observer.histograms["h"].buckets == (1, 2)

    def test_summary_sections_appear_only_when_recorded(self):
        observer = obs.enable()
        summary = observer.summary()
        assert "gauges" not in summary
        assert "histograms" not in summary
        obs.gauge("g", 1)
        obs.observe("h", 2)
        summary = observer.summary()
        assert summary["gauges"] == {"g": 1.0}
        assert summary["histograms"]["h"]["count"] == 1


class TestPrometheusExport:
    def test_counters_gauges_and_sanitized_names(self):
        summary = {
            "spans": {},
            "counters": {"search.cache.hits": 3},
            "gauges": {"liveness.A.peak": 44.0},
        }
        text = obs.prometheus_text(summary)
        assert "# TYPE repro_search_cache_hits_total counter" in text
        assert "repro_search_cache_hits_total 3" in text
        assert "# TYPE repro_liveness_A_peak gauge" in text
        assert "repro_liveness_A_peak 44" in text

    def test_histogram_cumulative_buckets(self):
        hist = Histogram(buckets=(1, 2, 4))
        hist.observe_many([1, 3, 100])
        summary = {
            "spans": {},
            "counters": {},
            "histograms": {"reuse": hist.as_dict()},
        }
        lines = obs.prometheus_text(summary).splitlines()
        assert 'repro_reuse_bucket{le="1"} 1' in lines
        assert 'repro_reuse_bucket{le="2"} 1' in lines
        assert 'repro_reuse_bucket{le="4"} 2' in lines
        assert 'repro_reuse_bucket{le="+Inf"} 3' in lines
        assert "repro_reuse_sum 104" in lines
        assert "repro_reuse_count 3" in lines

    def test_span_summary_series(self):
        summary = {
            "spans": {
                "search/evaluate": {
                    "count": 6,
                    "total_s": 0.5,
                    "mean_s": 0.5 / 6,
                    "min_s": 0.01,
                    "max_s": 0.2,
                }
            },
            "counters": {},
        }
        text = obs.prometheus_text(summary)
        assert 'repro_span_seconds_count{path="search/evaluate"} 6' in text
        assert 'repro_span_seconds_sum{path="search/evaluate"} 0.5' in text

    def test_accepts_live_observer(self):
        observer = obs.enable()
        obs.counter("hits", 2)
        obs.gauge("g", 1.5)
        text = obs.prometheus_text(observer)
        assert "repro_hits_total 2" in text
        assert "repro_g 1.5" in text

    def test_empty_summary_renders_empty(self):
        assert obs.prometheus_text({"spans": {}, "counters": {}}) == ""


class TestChromeTraceExport:
    def _trace(self):
        buf = io.StringIO()
        obs.enable(trace=buf)
        with obs.span("outer"):
            with obs.span("inner", n=3):
                pass
        obs.counter("hits", 2)
        obs.disable()
        return _events(buf)

    def test_spans_become_complete_events(self):
        trace = obs.chrome_trace(self._trace())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        # Span events are emitted at span end: inner closes first.
        assert [e["name"] for e in spans] == ["inner", "outer"]
        inner, outer = spans
        assert inner["args"]["path"] == "outer/inner"
        assert inner["args"]["n"] == 3
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_counters_become_counter_samples_at_end(self):
        trace = obs.chrome_trace(self._trace())
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["name"] == "hits"
        assert counters[0]["args"] == {"value": 2}
        end = max(e["ts"] + e["dur"] for e in trace["traceEvents"] if e["ph"] == "X")
        assert counters[0]["ts"] == end

    def test_write_chrome_trace_round_trip(self, tmp_path):
        jsonl = tmp_path / "run.jsonl"
        obs.enable(trace=str(jsonl))
        with obs.span("work"):
            pass
        obs.disable()
        out = obs.write_chrome_trace(jsonl, tmp_path / "trace.json")
        data = json.loads(out.read_text())
        assert data["displayTimeUnit"] == "ms"
        assert [e["name"] for e in data["traceEvents"] if e["ph"] == "X"] == ["work"]

    def test_load_trace_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ev": "meta"}\n\n{"ev": "summary"}\n')
        assert [e["ev"] for e in obs.load_trace(path)] == ["meta", "summary"]


class TestNumpyAttrsRegression:
    """Satellite (a): numpy scalars in span attrs crashed ``json.dumps``
    inside ``Observer._emit`` before ``_json_default`` existed."""

    def test_numpy_scalars_serialize_as_plain_numbers(self):
        buf = io.StringIO()
        obs.enable(trace=buf)
        with obs.span("simulate", n=np.int64(5), ratio=np.float64(2.5)):
            pass
        obs.disable()
        span_event = next(e for e in _events(buf) if e["ev"] == "span")
        assert span_event["attrs"] == {"n": 5, "ratio": 2.5}

    def test_arbitrary_objects_degrade_to_str(self):
        buf = io.StringIO()
        obs.enable(trace=buf)
        with obs.span("simulate", matrix=object()):
            pass
        obs.disable()
        span_event = next(e for e in _events(buf) if e["ev"] == "span")
        assert span_event["attrs"]["matrix"].startswith("<object object")

    def test_numpy_array_item_failure_falls_back_to_str(self):
        # A 2-element array has .item() but it raises; _emit must still
        # not crash and must record the str() form instead.
        buf = io.StringIO()
        obs.enable(trace=buf)
        with obs.span("simulate", arr=np.array([1, 2])):
            pass
        obs.disable()
        span_event = next(e for e in _events(buf) if e["ev"] == "span")
        assert span_event["attrs"]["arr"] == "[1 2]"


class TestFlushLifecycle:
    """Satellite (c): idempotent flush + the atexit safety net."""

    def test_double_flush_is_a_no_op(self):
        buf = io.StringIO()
        observer = obs.enable(trace=buf)
        obs.counter("done")
        obs.gauge("g", 7)
        observer.flush()
        first = buf.getvalue()
        observer.flush()
        assert buf.getvalue() == first
        assert sum(1 for e in _events(buf) if e["ev"] == "summary") == 1
        assert [e for e in _events(buf) if e["ev"] == "gauge"] == [
            {"seq": 2, "ev": "gauge", "name": "g", "value": 7.0}
        ]

    def test_disable_after_flush_is_safe(self):
        buf = io.StringIO()
        observer = obs.enable(trace=buf)
        observer.flush()
        before = buf.getvalue()
        finished = obs.disable()
        assert finished is observer
        assert buf.getvalue() == before

    def test_enable_flushes_the_previous_observer(self):
        buf = io.StringIO()
        obs.enable(trace=buf)
        obs.counter("old.run")
        replacement = obs.enable()
        assert obs.get_observer() is replacement
        events = _events(buf)
        assert events[-1]["ev"] == "summary"
        assert events[-1]["data"]["counters"] == {"old.run": 1}

    def test_atexit_completes_trace_when_disable_forgotten(self, tmp_path):
        trace = tmp_path / "orphan.jsonl"
        script = textwrap.dedent(
            f"""
            import sys
            sys.path.insert(0, {SRC!r})
            from repro import obs
            obs.enable(trace={str(trace)!r})
            with obs.span("work"):
                obs.counter("done")
            # No obs.disable(): the atexit hook must flush the trace.
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
        events = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert events[-1]["ev"] == "summary"
        assert events[-1]["data"]["counters"] == {"done": 1}
        assert any(e["ev"] == "span" and e["name"] == "work" for e in events)
