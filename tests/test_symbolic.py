"""Tests for the symbolic (sympy) closed forms."""

import pytest
import sympy
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation import estimate_distinct_accesses
from repro.estimation.symbolic import (
    max_problem_size,
    symbolic_distinct_accesses,
    symbolic_reuse,
    trip_symbols,
)
from repro.ir import NestBuilder, parse_program
from repro.window import mws_2d_estimate, mws_3d_estimate
from repro.window.symbolic import (
    scaling_exponent,
    symbolic_mws_2d,
    symbolic_mws_3d,
)


class TestSymbolicReuse:
    def test_example2_shape(self):
        n1, n2 = trip_symbols(2)
        expr = symbolic_reuse([(1, -2)], (n1, n2))
        assert sympy.simplify(expr - (n1 - 1) * (n2 - 2)) == 0

    def test_example3_value(self):
        trips = trip_symbols(2)
        expr = symbolic_reuse([(1, 0), (0, 1), (1, 1)], trips)
        assert expr.subs(dict(zip(trips, (10, 10)))) == 261

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            symbolic_reuse([(1,)], trip_symbols(2))


class TestSymbolicDistinct:
    def test_example2(self):
        prog = parse_program(
            "for i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j+2] } }"
        )
        expr, syms = symbolic_distinct_accesses(prog, "A")
        assert expr.subs(dict(zip(syms, (10, 10)))) == 128

    def test_single_ref_kernel(self):
        prog = parse_program(
            "for i = 1 to 20 { for j = 1 to 10 { A[2*i + 5*j + 1] } }"
        )
        expr, syms = symbolic_distinct_accesses(prog, "A")
        assert expr.subs(dict(zip(syms, (20, 10)))) == 80

    def test_injective_is_volume(self):
        prog = parse_program("for i = 1 to 6 { for j = 1 to 7 { A[i][j] = 1 } }")
        expr, syms = symbolic_distinct_accesses(prog, "A")
        assert sympy.simplify(expr - syms[0] * syms[1]) == 0

    def test_rejects_nonuniform(self):
        prog = parse_program(
            "for i = 1 to 5 { for j = 1 to 5 { A[3*i + 7*j] = A[4*i - 3*j] } }"
        )
        with pytest.raises(ValueError):
            symbolic_distinct_accesses(prog, "A")

    def test_rejects_multiref_kernel(self):
        prog = parse_program(
            "for i = 1 to 5 { for j = 1 to 5 { X[2*i + 5*j] = X[2*i + 5*j + 4] } }"
        )
        with pytest.raises(ValueError):
            symbolic_distinct_accesses(prog, "X")

    @given(st.integers(-3, 3), st.integers(-3, 3), st.integers(4, 12), st.integers(4, 12))
    @settings(max_examples=60, deadline=None)
    def test_substitution_matches_numeric(self, di, dj, n1, n2):
        if (di, dj) == (0, 0):
            di = 1
        ident = [[1, 0], [0, 1]]
        prog = (
            NestBuilder()
            .loop("i", 1, n1)
            .loop("j", 1, n2)
            .statement("S1", write=("A", ident, [0, 0]))
            .statement("S2", write=("B", ident, [0, 0]), reads=[("A", ident, [di, dj])])
            .build()
        )
        expr, syms = symbolic_distinct_accesses(prog, "A")
        numeric = estimate_distinct_accesses(prog, "A")
        assert expr.subs(dict(zip(syms, (n1, n2)))) == numeric.upper


class TestMaxProblemSize:
    def test_inverse_question(self):
        prog = parse_program(
            "for i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j+2] } }"
        )
        expr, syms = symbolic_distinct_accesses(prog, "A")
        best = max_problem_size(expr, syms, capacity=10_000)
        n = sympy.Symbol("n")
        value_at = lambda k: int(expr.subs({s: k for s in syms}))
        assert value_at(best) <= 10_000 < value_at(best + 1)

    def test_too_small_capacity(self):
        prog = parse_program(
            "for i = 1 to 4 { for j = 1 to 4 { A[i][j] = A[i-1][j] } }"
        )
        expr, syms = symbolic_distinct_accesses(prog, "A")
        assert max_problem_size(expr, syms, capacity=0) is None


class TestSymbolicMws:
    @given(st.integers(1, 4), st.integers(-4, 4), st.integers(0, 3), st.integers(-3, 3))
    @settings(max_examples=80, deadline=None)
    def test_2d_matches_numeric(self, alpha1, alpha2, a, b):
        if (a, b) == (0, 0):
            a = 1
        expr, syms = symbolic_mws_2d(alpha1, alpha2, a, b)
        for n1, n2 in ((10, 10), (25, 10), (7, 19)):
            symbolic = expr.subs(dict(zip(syms, (n1, n2))))
            numeric = mws_2d_estimate(alpha1, alpha2, n1, n2, a, b)
            assert sympy.Rational(str(numeric)) == sympy.nsimplify(symbolic)

    @given(
        st.integers(-4, 4),
        st.integers(-4, 4),
        st.integers(-3, 3),
        st.integers(-3, 3),
    )
    @settings(max_examples=120, deadline=None)
    def test_2d_matches_numeric_all_sign_regimes(self, alpha1, alpha2, a, b):
        """Regression for the once-silent nonnegative-alpha assumption:
        eq. (2)'s symbolic form must track the numeric estimator for
        negated access rows and negated transformation rows too (the
        absolute values in the window step and span denominators fold
        the signs)."""
        if (a, b) == (0, 0):
            b = -2
        expr, syms = symbolic_mws_2d(alpha1, alpha2, a, b)
        for n1, n2 in ((10, 10), (25, 10), (7, 19), (3, 3)):
            symbolic = expr.subs(dict(zip(syms, (n1, n2))))
            numeric = mws_2d_estimate(alpha1, alpha2, n1, n2, a, b)
            assert sympy.Rational(str(numeric)) == sympy.nsimplify(symbolic)

    def test_2d_negated_rows_give_same_window(self):
        reference = symbolic_mws_2d(2, 5, 1, 0)[0]
        assert symbolic_mws_2d(-2, -5, 1, 0)[0] == reference
        assert symbolic_mws_2d(2, 5, -1, 0)[0] == reference

    def test_3d_matches_numeric(self):
        expr, syms = symbolic_mws_3d((1, 3, -3))
        assert expr.subs(dict(zip(syms, (10, 20, 30)))) == mws_3d_estimate(
            (1, 3, -3), (10, 20, 30)
        )

    def test_3d_negative_branch(self):
        expr, syms = symbolic_mws_3d((2, -1, 4))
        assert expr.subs(dict(zip(syms, (5, 6, 7)))) == mws_3d_estimate(
            (2, -1, 4), (5, 6, 7)
        )

    @given(
        st.tuples(st.integers(-3, 3), st.integers(-3, 3), st.integers(-3, 3)),
        st.tuples(st.integers(1, 8), st.integers(1, 8), st.integers(1, 8)),
    )
    @settings(max_examples=150, deadline=None)
    def test_3d_matches_numeric_randomized(self, vector, trips):
        """Pins the Section 4.3 Piecewise: inside the fit region the
        ``max(0, N - |d|)`` clamps of the numeric form are strictly
        positive and drop out; outside it (some ``|d_j| >= N_j``) both
        forms collapse to 1.  Randomized over signs *and* out-of-fit
        bound vectors."""
        if vector == (0, 0, 0):
            vector = (1, 0, 0)
        expr, syms = symbolic_mws_3d(vector)
        assert expr.subs(dict(zip(syms, trips))) == mws_3d_estimate(
            vector, trips
        )

    def test_3d_out_of_fit_collapses_to_one(self):
        expr, syms = symbolic_mws_3d((1, 3, -3))
        assert expr.subs(dict(zip(syms, (10, 3, 30)))) == 1
        assert mws_3d_estimate((1, 3, -3), (10, 3, 30)) == 1

    def test_scaling_exponent_drops_after_embedding(self):
        # Before: MWS linear in N2 and N3; after the Section 4.3 embedding
        # the reuse vector becomes (0, 0, 1) and the window is constant.
        before, syms = symbolic_mws_3d((1, 3, -3))
        after, _ = symbolic_mws_3d((0, 0, 1))
        assert scaling_exponent(before, syms[1]) == 1
        assert scaling_exponent(after, syms[1]) == 0

    def test_singular_row_rejected(self):
        with pytest.raises(ValueError):
            symbolic_mws_2d(2, 5, 0, 0)

    def test_aligned_row_constant(self):
        expr, _ = symbolic_mws_2d(2, -3, 2, -3)
        assert expr == 1
