"""Unit and property tests for repro.linalg.matrix.IntMatrix."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import IntMatrix


def small_matrix(n_rows, n_cols, lo=-6, hi=6):
    return st.lists(
        st.lists(st.integers(lo, hi), min_size=n_cols, max_size=n_cols),
        min_size=n_rows,
        max_size=n_rows,
    ).map(IntMatrix)


square = st.integers(1, 4).flatmap(lambda n: small_matrix(n, n))


class TestConstruction:
    def test_basic(self):
        m = IntMatrix([[1, 2], [3, 4]])
        assert m.shape == (2, 2)
        assert m[1, 0] == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            IntMatrix([])

    def test_rejects_empty_rows(self):
        with pytest.raises(ValueError):
            IntMatrix([[]])

    def test_rejects_ragged(self):
        with pytest.raises(ValueError):
            IntMatrix([[1, 2], [3]])

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            IntMatrix([[1.5]])

    def test_rejects_bools(self):
        with pytest.raises(TypeError):
            IntMatrix([[True]])

    def test_identity(self):
        assert IntMatrix.identity(3).rows == ((1, 0, 0), (0, 1, 0), (0, 0, 1))

    def test_zeros(self):
        assert IntMatrix.zeros(2, 3).rows == ((0, 0, 0), (0, 0, 0))

    def test_column(self):
        assert IntMatrix.column([1, 2]).shape == (2, 1)

    def test_repr_roundtrip(self):
        m = IntMatrix([[1, -2], [0, 5]])
        assert eval(repr(m)) == m

    def test_pretty_contains_entries(self):
        text = IntMatrix([[10, -2]]).pretty()
        assert "10" in text and "-2" in text


class TestArithmetic:
    def test_add_sub(self):
        a = IntMatrix([[1, 2], [3, 4]])
        b = IntMatrix([[5, 6], [7, 8]])
        assert (a + b) - b == a

    def test_neg(self):
        a = IntMatrix([[1, -2]])
        assert -(-a) == a

    def test_scale(self):
        assert IntMatrix([[1, 2]]).scale(3) == IntMatrix([[3, 6]])

    def test_matmul(self):
        a = IntMatrix([[1, 2], [3, 4]])
        b = IntMatrix([[0, 1], [1, 0]])
        assert a @ b == IntMatrix([[2, 1], [4, 3]])

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            IntMatrix([[1, 2]]) @ IntMatrix([[1, 2]])

    def test_add_shape_mismatch(self):
        with pytest.raises(ValueError):
            IntMatrix([[1]]) + IntMatrix([[1, 2]])

    def test_apply(self):
        m = IntMatrix([[2, 0], [0, 3]])
        assert m.apply((4, 5)) == (8, 15)

    def test_apply_length_mismatch(self):
        with pytest.raises(ValueError):
            IntMatrix([[1, 2]]).apply((1,))

    def test_transpose_involution(self):
        m = IntMatrix([[1, 2, 3], [4, 5, 6]])
        assert m.transpose().transpose() == m

    @given(square, square)
    @settings(max_examples=60)
    def test_matmul_identity(self, a, b):
        n = a.n_rows
        assert a @ IntMatrix.identity(n) == a
        assert IntMatrix.identity(n) @ a == a


class TestDeterminant:
    def test_2x2(self):
        assert IntMatrix([[1, 2], [3, 4]]).det() == -2

    def test_singular(self):
        assert IntMatrix([[1, 2], [2, 4]]).det() == 0

    def test_1x1(self):
        assert IntMatrix([[7]]).det() == 7

    def test_3x3_known(self):
        m = IntMatrix([[2, 0, 1], [1, 1, 0], [0, 3, 1]])
        assert m.det() == 2 * (1 * 1 - 0 * 3) - 0 + 1 * (1 * 3 - 0)

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            IntMatrix([[1, 2]]).det()

    @given(square)
    @settings(max_examples=80)
    def test_det_transpose(self, m):
        assert m.det() == m.transpose().det()

    @given(st.integers(1, 3).flatmap(lambda n: st.tuples(small_matrix(n, n), small_matrix(n, n))))
    @settings(max_examples=80)
    def test_det_multiplicative(self, pair):
        a, b = pair
        assert (a @ b).det() == a.det() * b.det()

    def test_det_permutation_sign(self):
        assert IntMatrix([[0, 1], [1, 0]]).det() == -1

    def test_zero_column_pivot_path(self):
        # Exercises the pivot search when m[k][k] == 0.
        m = IntMatrix([[0, 1, 2], [1, 0, 3], [4, 5, 0]])
        # Laplace check
        expected = 0 * (0 - 15) - 1 * (0 - 12) + 2 * (5 - 0)
        assert m.det() == expected


class TestRankInverse:
    def test_rank_full(self):
        assert IntMatrix([[1, 0], [0, 1]]).rank() == 2

    def test_rank_deficient(self):
        assert IntMatrix([[1, 2], [2, 4]]).rank() == 1

    def test_rank_wide(self):
        assert IntMatrix([[3, 0, 1], [0, 1, 1]]).rank() == 2

    def test_rank_zero_matrix(self):
        assert IntMatrix.zeros(3, 3).rank() == 0

    def test_inverse_unimodular(self):
        m = IntMatrix([[2, 3], [1, 2]])
        inv = m.inverse_unimodular()
        assert m @ inv == IntMatrix.identity(2)

    def test_inverse_det_minus_one(self):
        m = IntMatrix([[0, 1], [1, 0]])
        assert m @ m.inverse_unimodular() == IntMatrix.identity(2)

    def test_inverse_rejects_non_unimodular(self):
        with pytest.raises(ValueError):
            IntMatrix([[2, 0], [0, 1]]).inverse_unimodular()

    def test_inverse_1x1(self):
        assert IntMatrix([[-1]]).inverse_unimodular() == IntMatrix([[-1]])


class TestPredicates:
    def test_is_identity(self):
        assert IntMatrix.identity(2).is_identity()
        assert not IntMatrix([[1, 1], [0, 1]]).is_identity()

    def test_is_zero(self):
        assert IntMatrix.zeros(2, 2).is_zero()
        assert not IntMatrix.identity(2).is_zero()

    def test_hashable(self):
        assert len({IntMatrix.identity(2), IntMatrix.identity(2)}) == 1

    def test_to_lists_is_copy(self):
        m = IntMatrix([[1, 2]])
        lists = m.to_lists()
        lists[0][0] = 99
        assert m[0, 0] == 1
