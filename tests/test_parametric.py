"""Property suite for the parametric (symbolic-in-the-bounds) engine.

The contract under test: a derived :class:`ParametricExpr` answers any
member of its program *family* (same access structure, any bounds on or
above the domain) with the exact simulated value — substitution equals
simulation across the kernel catalog, is monotone in every trip count,
and is invariant under the access-stream-preserving rewrites (offset
translation, lower-bound shifts, index relabeling).  Derivation is
allowed to decline (``None``); it is never allowed to be wrong.
"""

from __future__ import annotations

import sympy
import pytest

from repro import obs
from repro.check.oracles import relabel_signed_permutation, translate_offsets
from repro.estimation.exact import exact_distinct_accesses
from repro.estimation.parametric import (
    ParametricExpr,
    clear_param_cache,
    derivation_base,
    derivation_supported,
    normalize_lowers,
    parametric_signature,
    parametric_value,
    with_trip_counts,
)
from repro.estimation.symbolic import (
    derive_parametric_distinct,
    derive_parametric_reuse,
    trip_symbols,
)
from repro.ir import parse_program
from repro.kernels.suite import (
    full_search,
    matmult,
    rasta_flt,
    sor,
    three_point,
    threestep_log,
    two_point,
)
from repro.window import max_window_size
from repro.window.symbolic import derive_parametric_mws

EXAMPLE8 = parse_program(
    """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j] = X[2*i + 5*j]
  }
}
""",
    name="example8",
)

#: Small catalog instances: big enough to clear every derivation domain,
#: small enough that the verifying simulations stay cheap.
CATALOG = [
    two_point(10),
    three_point(10),
    sor(10),
    matmult(6),
    full_search(12, 4),
    rasta_flt(5, 8, 6),
]


def _sample_sizes(domain, count=3, step=3):
    """``count`` in-domain bound vectors walking up from the domain."""
    return [tuple(d + k * step for d in domain) for k in range(count)]


@pytest.fixture(autouse=True)
def _fresh_param_cache():
    clear_param_cache()
    yield
    clear_param_cache()


class TestSubstitutionEqualsSimulation:
    @pytest.mark.parametrize(
        "program", CATALOG, ids=lambda p: p.name
    )
    def test_mws_across_catalog(self, program):
        for array in program.arrays:
            pe = derive_parametric_mws(program, array)
            if pe is None:
                continue  # fallback contract; threestep_log's R declines
            for trips in _sample_sizes(pe.domain):
                resized = with_trip_counts(program, trips)
                assert pe.substitute(trips) == max_window_size(
                    resized, array
                ), f"{program.name}/{array} at {trips}"

    @pytest.mark.parametrize(
        "program", CATALOG, ids=lambda p: p.name
    )
    def test_distinct_across_catalog(self, program):
        for array in program.arrays:
            pe = derive_parametric_distinct(program, array)
            if pe is None:
                continue
            for trips in _sample_sizes(pe.domain):
                resized = with_trip_counts(program, trips)
                assert pe.substitute(trips) == exact_distinct_accesses(
                    resized, array
                ), f"{program.name}/{array} at {trips}"

    def test_catalog_is_mostly_derivable(self):
        """The engine must actually fire on the paper's kernels, not
        decline across the board and vacuously pass the tests above."""
        derived = sum(
            1
            for program in CATALOG
            for array in program.arrays
            if derive_parametric_mws(program, array) is not None
        )
        assert derived >= 8

    def test_example8_exact_not_estimate(self):
        pe = derive_parametric_mws(EXAMPLE8, "X")
        n1, n2 = pe.symbols
        assert sympy.expand(pe.expr) == 5 * n2 - 10
        # eq. (2) estimates 50 here; the exact engines say 40.
        assert pe.substitute((25, 10)) == 40

    def test_transformed_order_matches_engines(self):
        from repro.linalg import IntMatrix

        interchange = IntMatrix([[0, 1], [1, 0]])
        program = two_point(10)
        pe = derive_parametric_mws(program, "A", interchange)
        assert pe is not None
        for trips in _sample_sizes(pe.domain):
            resized = with_trip_counts(program, trips)
            assert pe.substitute(trips) == max_window_size(
                resized, "A", interchange
            )

    def test_reuse_closed_form_counts_pairs(self):
        pe = derive_parametric_reuse(two_point(10), "A")
        assert pe is not None and pe.method == "closed-form"
        # reuse distance (1, 0): (N1-1)*N2 reusing iterations.
        assert pe.substitute((10, 10)) == 90
        # Clamped, so below-distance bounds give 0, not negatives.
        assert pe.substitute((1, 7)) == 0


class TestMonotonicity:
    @pytest.mark.parametrize(
        "program", [two_point(10), sor(10), EXAMPLE8], ids=lambda p: p.name
    )
    def test_mws_monotone_in_every_trip_count(self, program):
        for array in program.arrays:
            pe = derive_parametric_mws(program, array)
            if pe is None:
                continue
            base = tuple(d + 1 for d in pe.domain)
            reference = pe.substitute(base)
            for j in range(len(base)):
                previous = reference
                for bump in range(1, 5):
                    grown = list(base)
                    grown[j] += bump
                    value = pe.substitute(tuple(grown))
                    assert value >= previous, (
                        f"{program.name}/{array}: MWS not monotone in "
                        f"N{j + 1}"
                    )
                    previous = value

    def test_distinct_monotone_in_every_trip_count(self):
        program = parse_program(
            "for i = 1 to 10 { for j = 1 to 10 { "
            "A[i][j] = A[i - 1][j + 2] } }"
        )
        pe = derive_parametric_distinct(program, "A")
        base = tuple(d + 1 for d in pe.domain)
        for j in range(len(base)):
            grown = list(base)
            grown[j] += 3
            assert pe.substitute(tuple(grown)) > pe.substitute(base)


class TestMetamorphicInvariance:
    def test_offset_translation_preserves_expression(self):
        program = two_point(10)
        shifted = translate_offsets(program, {"A": (3, -2)})
        pe0 = derive_parametric_mws(program, "A")
        pe1 = derive_parametric_mws(shifted, "A")
        assert sympy.expand(pe0.expr - pe1.expr) == 0
        assert pe0.domain == pe1.domain

    def test_lower_bound_shift_is_same_family(self):
        base = parse_program(
            "for i = 1 to 25 { for j = 1 to 10 { "
            "X[2*i + 5*j] = X[2*i + 5*j] } }"
        )
        shifted = parse_program(
            "for i = 5 to 29 { for j = 3 to 12 { "
            "X[2*i + 5*j] = X[2*i + 5*j] } }"
        )
        # Shifting lowers *with* the matching offset fold is the same
        # access stream; the raw shift alone is a different family.
        norm = normalize_lowers(shifted)
        assert parametric_signature(shifted) == parametric_signature(norm)
        assert parametric_signature(base) != parametric_signature(shifted)
        pe = derive_parametric_mws(shifted, "X")
        for trips in _sample_sizes(pe.domain):
            assert pe.substitute(trips) == max_window_size(
                with_trip_counts(shifted, trips), "X"
            )

    def test_signature_invariant_under_resize(self):
        program = two_point(10)
        psig = parametric_signature(program)
        for trips in [(3, 3), (10, 17), (40, 5)]:
            assert parametric_signature(with_trip_counts(program, trips)) == psig

    def test_relabel_reversal_preserves_values(self):
        """Time reversal is a window-preserving relabeling: the derived
        forms of both programs must agree wherever both are defined."""
        program = sor(10)
        reversed_program = relabel_signed_permutation(
            program, (0, 1), (-1, -1)
        )
        pe0 = derive_parametric_mws(program, "A")
        pe1 = derive_parametric_mws(reversed_program, "A")
        assert pe0 is not None and pe1 is not None
        domain = tuple(
            max(a, b) for a, b in zip(pe0.domain, pe1.domain)
        )
        for trips in _sample_sizes(domain):
            assert pe0.substitute(trips) == pe1.substitute(trips)

    def test_depth3_multiref_invariance(self):
        program = matmult(6)
        shifted = translate_offsets(program, {"B": (1, -1)})
        for array in ("A", "B", "C"):
            pe0 = derive_parametric_mws(program, array)
            pe1 = derive_parametric_mws(shifted, array)
            assert (pe0 is None) == (pe1 is None)
            if pe0 is None:
                continue
            assert sympy.expand(pe0.expr - pe1.expr) == 0


class TestFallbackContract:
    def test_threestep_log_declines_and_falls_back(self):
        """Stride-4 floor regimes are not polynomial: derivation must
        decline (never emit an unverified expression) and the value path
        must count a fallback instead of answering."""
        program = threestep_log(16, 4, 4)
        assert derive_parametric_mws(program, "R") is None
        observer = obs.enable()
        try:
            assert parametric_value(program, "mws", array="R") is None
            assert observer.counters["param.fallback"] == 1
            assert "param.subs_hits" not in observer.counters
        finally:
            obs.disable()

    def test_off_domain_substitution_refuses(self):
        pe = derive_parametric_mws(EXAMPLE8, "X")
        below = tuple(d - 1 for d in pe.domain)
        assert pe.substitute(below) is None

    def test_substitute_rejects_wrong_arity(self):
        pe = derive_parametric_mws(EXAMPLE8, "X")
        with pytest.raises(ValueError, match="trip counts"):
            pe.substitute((10,))

    def test_negative_substitution_is_refused_not_served(self):
        n1, n2 = trip_symbols(2)
        bogus = ParametricExpr(
            "mws", "X", n1 - n2, (n1, n2), (1, 1), "interpolated-deg1", 5
        )
        assert bogus.substitute((2, 9)) is None

    def test_derivation_base_covers_reuse_distances(self):
        base = derivation_base(EXAMPLE8, "X")
        # Reuse vector (5, -2): the regime boundary sits near twice the
        # distance, so the base must clear 2*5 and 2*2 with margin.
        assert base >= (12, 6)

    def test_derivation_base_folds_pairwise_distances(self):
        """A pairwise ``A d = Δb`` solution with no common sink still
        bends the family (fuzz seed 1007's uniform variant): the base
        must clear it, uncapped, even though the common-sink distance
        set is empty and the distance exceeds the concrete bounds."""
        program = parse_program(
            """
for i1 = 1 to 3 {
  for i2 = 1 to 3 {
    A0[2*i1][i2] = A0[2*i1 + 1][i2] + A0[2*i1 + 18][i2]
  }
}
""",
            name="pairwise",
        )
        # write <-> second read solve to d = (9, 0); the other pairs
        # have odd element-space gaps and never meet.
        base = derivation_base(program, "A0")
        assert base[0] >= 20
        pe = derive_parametric_distinct(program, "A0")
        if pe is not None:
            # Past the boundary the overlap term (N1 - 9)*N2 is live;
            # the derived form must agree with enumeration there.
            for trips in [(tuple(pe.domain)), tuple(d + 3 for d in pe.domain)]:
                assert pe.substitute(trips) == exact_distinct_accesses(
                    with_trip_counts(program, trips), "A0"
                )

    def test_derivation_base_folds_both_orientations(self):
        """Fuzz seed 1254: with a nonsingular access matrix the pairwise
        solution of one orientation is lex-negative; dropping it left
        the base at (6, 8) while S1's read and S2's write meet at
        d = (9, 13)."""
        program = parse_program(
            """
for i1 = 1 to 5 {
  for i2 = 1 to 3 {
    S1: A0[i1 - i2][-2*i1 + i2 + 1]
    S2: A0[i1 - i2 - 4][-2*i1 + i2 - 4] = A0[i1 - i2 + 1][-2*i1 + i2 + 2]
  }
}
""",
            name="orientation",
        )
        assert derivation_base(program, "A0") >= (20, 28)

    def test_nonuniform_multiref_declines(self):
        """Corpus seed 1007 (shrunk): two writes with *different* access
        matrices meet only from N3 = 9 on — a regime boundary invisible
        to the base heuristic, so derivation must refuse the array
        rather than fit inside the clamped regime."""
        program = parse_program(
            """
array A0[1:1][-5:3][0:0]
for i1 = 1 to 1 {
  for i2 = 1 to 1 {
    for i3 = 1 to 1 {
      S1: A0[i3][-2*i1 + i3 - 4][0] = 0
      S2: A0[-i1 + 2*i3][-2*i1 + 2*i3 + 3][-2*i1 + 2*i3] = 0
    }
  }
}
""",
            name="nonuniform",
        )
        assert not derivation_supported(program, "A0")
        assert derive_parametric_distinct(program, "A0") is None
        assert derive_parametric_mws(program, "A0") is None
        # array=None (the program total) must refuse as well.
        assert derive_parametric_mws(program) is None

    def test_value_path_serves_and_counts(self):
        observer = obs.enable()
        try:
            value = parametric_value(EXAMPLE8, "mws", array="X")
            assert value == 40
            assert observer.counters["param.derived"] == 1
            assert observer.counters["param.subs_hits"] == 1
            # Second query on a same-family resize: pure substitution.
            resized = with_trip_counts(EXAMPLE8, (40, 20))
            fast_calls = observer.counters.get("fast.simulate.calls", 0)
            assert parametric_value(resized, "mws", array="X") == 90
            assert observer.counters["param.derived"] == 1
            assert observer.counters.get("fast.simulate.calls", 0) == fast_calls
        finally:
            obs.disable()
