"""Multi-level memory hierarchy model (``memory/hierarchy.py``).

Pins the model's two defining laws directly (the fuzzed versions live in
``check/oracles.py`` as ``hierarchy-degenerate-flat`` and
``hierarchy-capacity-monotone``):

* a one-tier stack IS the flat scratchpad — verified field for field
  over the entire checked-in regression corpus, both policies;
* tier accounting is the difference of adjacent cumulative-capacity
  boundaries, so it must reconcile against independent flat simulations
  (the "brute force" in these tests re-derives every tier's numbers from
  scratch with :func:`simulate_scratchpad` alone).
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.check import load_repro
from repro.ir import parse_program
from repro.ir.generate import GeneratorConfig, random_program
from repro.linalg import IntMatrix
from repro.memory import (
    PRESETS,
    MemoryHierarchy,
    MemoryTier,
    preset,
    simulate_hierarchy,
    simulate_scratchpad,
    size_memory_for_hierarchy,
)
from repro.memory.hierarchy import WORDS_PER_KB

from tests.conftest import fuzz_seeds

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.json"))

STENCIL = parse_program(
    "for i = 1 to 8 { for j = 1 to 8 { "
    "B[i][j] = A[i][j] + A[i][j + 1] + A[i - 1][j] } }",
    name="stencil",
)

SKEW = IntMatrix([[1, 1], [0, 1]])


def _stack(*caps: int) -> MemoryHierarchy:
    """A test stack with the given capacities and valid cost ordering."""
    tiers = tuple(
        MemoryTier(f"t{k}", cap, 1.0 + k, 5.0 + 5.0 * k)
        for k, cap in enumerate(caps)
    )
    return MemoryHierarchy(name="test", tiers=tiers)


class TestConstruction:
    def test_tier_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            MemoryTier("bad", 0, 1.0, 5.0)
        with pytest.raises(ValueError, match="costs"):
            MemoryTier("bad", 4, 0.0, 5.0)
        with pytest.raises(ValueError, match="costs"):
            MemoryTier("bad", 4, 1.0, -1.0)

    def test_hierarchy_needs_tiers(self):
        with pytest.raises(ValueError, match="at least one tier"):
            MemoryHierarchy("empty", ())

    def test_cost_ordering_enforced(self):
        fast = MemoryTier("fast", 4, 2.0, 10.0)
        with pytest.raises(ValueError, match="cheaper"):
            MemoryHierarchy("bad", (fast, MemoryTier("below", 8, 3.0, 9.0)))
        with pytest.raises(ValueError, match="faster"):
            MemoryHierarchy("bad", (fast, MemoryTier("below", 8, 1.0, 11.0)))
        with pytest.raises(ValueError, match="off-chip energy"):
            MemoryHierarchy("bad", (fast,), offchip_energy_pj=9.0)
        with pytest.raises(ValueError, match="off-chip latency"):
            MemoryHierarchy("bad", (fast,), offchip_latency_ns=1.0)

    def test_capacity_views(self):
        stack = _stack(4, 8, 16)
        assert stack.depth == 3
        assert stack.capacities == (4, 8, 16)
        assert stack.cumulative_capacities == (4, 12, 28)
        assert stack.total_capacity == 28

    def test_resized_touches_one_capacity_only(self):
        stack = _stack(4, 8)
        grown = stack.resized(1, 64)
        assert grown.capacities == (4, 64)
        assert grown.tiers[1].energy_pj == stack.tiers[1].energy_pj
        assert grown.tiers[1].latency_ns == stack.tiers[1].latency_ns
        assert stack.capacities == (4, 8)  # original untouched

    def test_spec_is_canonical_json(self):
        stack = _stack(4, 8)
        spec = stack.spec()
        assert json.loads(json.dumps(spec)) == spec
        assert spec["tiers"] == [["t0", 4, 1.0, 5.0], ["t1", 8, 2.0, 10.0]]


class TestPresets:
    def test_known_presets(self):
        assert set(PRESETS) == {"tcm", "cache", "flat"}
        for name, stack in PRESETS.items():
            assert preset(name) is stack
            assert stack.name == name

    def test_tcm_geometry(self):
        tcm = preset("tcm")
        assert tcm.capacities == (16 * WORDS_PER_KB, 128 * WORDS_PER_KB)
        assert [t.name for t in tcm.tiers] == ["l1", "tcm"]

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="available"):
            preset("dram")


class TestDegenerateEquivalence:
    """One tier of capacity c IS the flat scratchpad at c."""

    @pytest.mark.parametrize("capacity", [1, 2, 5, 64])
    @pytest.mark.parametrize("policy", ["belady", "lru"])
    def test_stencil(self, capacity, policy):
        stack = _stack(capacity)
        for t in (None, SKEW):
            stacked = simulate_hierarchy(
                STENCIL, stack, transformation=t, policy=policy
            )
            flat = simulate_scratchpad(
                STENCIL, capacity, transformation=t, policy=policy
            )
            assert stacked.levels == (flat,)
            assert stacked.tiers[0].hits == flat.hits
            assert stacked.tiers[0].lookups == flat.accesses
            assert stacked.tiers[0].fetches_below == flat.misses
            assert stacked.tiers[0].writebacks_below == flat.writebacks
            assert stacked.offchip_transfers == flat.offchip_transfers

    @pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
    @pytest.mark.parametrize("policy", ["belady", "lru"])
    def test_full_regression_corpus(self, path, policy):
        """Acceptance pin: 1-tier == flat on every corpus program."""
        program = load_repro(path).program
        for capacity in (1, 3, 16):
            stack = _stack(capacity)
            stacked = simulate_hierarchy(program, stack, policy=policy)
            flat = simulate_scratchpad(program, capacity, policy=policy)
            assert stacked.levels == (flat,), path.name
            expected = (
                flat.hits * stack.tiers[0].energy_pj
                + flat.offchip_transfers * stack.offchip_energy_pj
            )
            assert stacked.energy_pj == pytest.approx(expected)


class TestTierAccounting:
    """Brute-force reconciliation: every tier's numbers re-derived from
    independent flat simulations at the cumulative capacities."""

    def _check(self, program, stack, policy="belady"):
        stats = simulate_hierarchy(program, stack, policy=policy)
        flats = [
            simulate_scratchpad(program, capacity, policy=policy)
            for capacity in stack.cumulative_capacities
        ]
        assert stats.levels == tuple(flats)
        prev_misses = stats.accesses
        energy = latency = 0.0
        for tier, tier_stats, flat in zip(stack.tiers, stats.tiers, flats):
            assert tier_stats.lookups == prev_misses
            assert tier_stats.hits == prev_misses - flat.misses
            assert tier_stats.fetches_below == flat.misses
            assert tier_stats.writebacks_below == flat.writebacks
            assert tier_stats.transfers_below == flat.offchip_transfers
            energy += tier_stats.hits * tier.energy_pj
            latency += tier_stats.hits * tier.latency_ns
            prev_misses = flat.misses
        for below, flat in zip(stack.tiers[1:], flats[:-1]):
            energy += flat.writebacks * below.energy_pj
            latency += flat.writebacks * below.latency_ns
        energy += flats[-1].offchip_transfers * stack.offchip_energy_pj
        latency += flats[-1].offchip_transfers * stack.offchip_latency_ns
        assert stats.energy_pj == pytest.approx(energy)
        assert stats.latency_ns == pytest.approx(latency)
        assert sum(stats.hits_per_tier) + stats.offchip_fetches == (
            stats.accesses
        )

    def test_stencil_three_tiers(self):
        self._check(STENCIL, _stack(2, 6, 24))

    def test_stencil_lru(self):
        self._check(STENCIL, _stack(3, 9), policy="lru")

    @pytest.mark.parametrize("seed", fuzz_seeds(12, salt=41))
    def test_randomized_programs_and_stacks(self, seed):
        config = GeneratorConfig(depth=2, min_trip=2, max_trip=6)
        program = random_program(seed, config)
        rng = random.Random(seed * 613 + 1)
        depth = rng.randint(1, 3)
        caps = [rng.randint(1, 32) for _ in range(depth)]
        self._check(program, _stack(*caps))


class TestMonotonicity:
    def test_growing_any_tier_never_hurts(self):
        stack = _stack(2, 6)
        base = simulate_hierarchy(STENCIL, stack)
        for index in range(stack.depth):
            for delta in (1, 7, 100):
                grown = stack.resized(
                    index, stack.capacities[index] + delta
                )
                more = simulate_hierarchy(STENCIL, grown)
                assert more.offchip_transfers <= base.offchip_transfers
                assert more.energy_pj <= base.energy_pj + 1e-9
                assert more.latency_ns <= base.latency_ns + 1e-9
                for before, after in zip(base.levels, more.levels):
                    assert (
                        after.offchip_transfers <= before.offchip_transfers
                    )


class TestHierarchySizing:
    def test_tiers_needed_prefix(self):
        report = size_memory_for_hierarchy(STENCIL, _stack(2, 8, 64))
        # MWS must fit in some prefix of a 74-word stack for this nest.
        assert report.tiers_needed is not None
        prefix = report.stats.levels[report.tiers_needed - 1]
        # By MWS definition the covering prefix suffers no capacity
        # misses: off-chip traffic is cold misses plus final writebacks.
        assert prefix.misses == prefix.cold_misses
        if report.tiers_needed > 1:
            cumulative = _stack(2, 8, 64).cumulative_capacities
            assert cumulative[report.tiers_needed - 2] < report.mws_words

    def test_stack_too_small(self):
        report = size_memory_for_hierarchy(STENCIL, _stack(1, 2))
        assert report.tiers_needed is None
        assert report.mws_words > 3

    def test_report_properties_mirror_stats(self):
        stack = preset("flat")
        report = size_memory_for_hierarchy(STENCIL, stack)
        stats = simulate_hierarchy(STENCIL, stack)
        assert report.offchip_transfers == stats.offchip_transfers
        assert report.energy_pj == pytest.approx(stats.energy_pj)
        assert report.program == "stencil"
        assert report.hierarchy == "flat"
