"""Parser and code generator tests, including round-trips."""

import pytest

from repro.ir import (
    ParseError,
    generate_source,
    generate_transformed_source,
    parse_program,
)
from repro.linalg import IntMatrix


SIMPLE = """
for i = 1 to 10 {
  for j = 1 to 20 {
    S1: A[i][j] = A[i-1][j+2] + B[2*i + 3*j] + 1
  }
}
"""


class TestParser:
    def test_nest_structure(self):
        prog = parse_program(SIMPLE)
        assert prog.nest.index_names == ("i", "j")
        assert prog.nest.trip_counts == (10, 20)

    def test_refs(self):
        prog = parse_program(SIMPLE)
        write = prog.statements[0].writes[0]
        assert write.array == "A"
        assert write.access == IntMatrix([[1, 0], [0, 1]])
        assert write.offset == (0, 0)
        reads = prog.statements[0].reads
        assert reads[0].offset == (-1, 2)
        assert reads[1].access == IntMatrix([[2, 3]])

    def test_labels(self):
        prog = parse_program(SIMPLE)
        assert prog.statements[0].label == "S1"

    def test_auto_label(self):
        prog = parse_program("for i = 1 to 4 { A[i] = A[i-1] }")
        assert prog.statements[0].label == "S1"

    def test_multiple_statements(self):
        prog = parse_program(
            """
            for i = 1 to 4 {
              S1: A[i] = 0
              S2: B[i] = A[i-1]
            }
            """
        )
        assert len(prog.statements) == 2
        assert prog.statements[1].reads[0].array == "A"

    def test_semicolon_separated(self):
        prog = parse_program("for i = 1 to 4 { A[i] = 1; B[i] = A[i] }")
        assert len(prog.statements) == 2

    def test_array_decls(self):
        prog = parse_program(
            """
            array A[0:12]
            array B[64]
            for i = 1 to 4 {
              A[i] = B[i]
            }
            """
        )
        assert prog.decl("A").origins == (0,)
        assert prog.decl("A").declared_size == 13
        assert prog.decl("B").declared_size == 64

    def test_comments(self):
        prog = parse_program(
            """
            # a comment
            for i = 1 to 4 {  // inline comment
              A[i] = 1
            }
            """
        )
        assert prog.nest.depth == 1

    def test_negative_bounds(self):
        prog = parse_program("for i = -2 to 2 { A[i] = 1 }")
        assert prog.nest.loops[0].lower == -2

    def test_pure_use_statement(self):
        prog = parse_program("for i = 1 to 4 { A[i] + A[i+1] }")
        stmt = prog.statements[0]
        assert stmt.writes == ()
        assert len(stmt.reads) == 2

    def test_complex_subscripts(self):
        prog = parse_program("for i = 1 to 4 { for j = 1 to 4 { A[2*(i - j) - 3] = 1 } }")
        ref = prog.statements[0].writes[0]
        assert ref.access == IntMatrix([[2, -2]])
        assert ref.offset == (-3,)

    def test_coefficient_after_var(self):
        prog = parse_program("for i = 1 to 4 { A[i*3 + 1] = 1 }")
        assert prog.statements[0].writes[0].access == IntMatrix([[3]])

    def test_unary_minus(self):
        prog = parse_program("for i = 1 to 4 { A[-i + 5] = 1 }")
        assert prog.statements[0].writes[0].access == IntMatrix([[-1]])

    def test_error_nonaffine(self):
        with pytest.raises(ParseError):
            parse_program("for i = 1 to 4 { A[i*i] = 1 }")

    def test_error_unknown_index(self):
        with pytest.raises(ParseError):
            parse_program("for i = 1 to 4 { A[k] = 1 }")

    def test_error_empty_loop(self):
        with pytest.raises(ParseError):
            parse_program("for i = 4 to 1 { A[i] = 1 }")

    def test_error_missing_brace(self):
        with pytest.raises(ParseError):
            parse_program("for i = 1 to 4 { A[i] = 1")

    def test_error_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_program("for i = 1 to 4 { A[i] = 1 } extra")

    def test_error_bad_character(self):
        with pytest.raises(ParseError):
            parse_program("for i = 1 to 4 { A[i] = @ }")

    def test_error_message_has_location(self):
        try:
            parse_program("for i = 1 to 4 {\n  A[k] = 1\n}")
        except ParseError as exc:
            assert "line" in str(exc)
        else:
            pytest.fail("expected ParseError")


class TestCodegen:
    def test_roundtrip(self):
        prog = parse_program(SIMPLE)
        text = generate_source(prog)
        again = parse_program(text)
        assert again.nest == prog.nest
        assert len(again.statements) == len(prog.statements)
        for s1, s2 in zip(again.statements, prog.statements):
            assert [(r.array, r.access, r.offset) for r in s1.references] == [
                (r.array, r.access, r.offset) for r in s2.references
            ]

    def test_decls_rendered(self):
        prog = parse_program("array A[0:12]\nfor i = 1 to 4 { A[i] = 1 }")
        assert "array A[0:12]" in generate_source(prog)

    def test_transformed_interchange(self):
        prog = parse_program(SIMPLE)
        text = generate_transformed_source(prog, IntMatrix([[0, 1], [1, 0]]))
        assert "for u1 = 1 to 20" in text
        assert "for u2 = 1 to 10" in text
        # A[i][j] becomes A[u2][u1].
        assert "A[u2][u1]" in text

    def test_transformed_skew_bounds(self):
        prog = parse_program("for i = 1 to 4 { for j = 1 to 4 { A[i][j] = 1 } }")
        text = generate_transformed_source(prog, IntMatrix([[1, 1], [0, 1]]))
        # Outer skewed index runs 2..8; inner has max/min bounds.
        assert "for u1 = 2 to 8" in text
        assert "max(" in text and "min(" in text

    def test_transformed_scan_is_exact(self):
        # Executing the generated transformed bounds scans exactly the
        # image of the box under T.
        from repro.polyhedral import ConstraintSystem, enumerate_lattice_points

        prog = parse_program("for i = 1 to 5 { for j = 1 to 7 { A[i][j] = 1 } }")
        t = IntMatrix([[2, -3], [1, -1]])
        system = ConstraintSystem.transformed_nest(prog.nest, t)
        points = set(enumerate_lattice_points(system))
        expected = {t.apply(p) for p in prog.nest.iterate()}
        assert points == expected

    def test_transformation_shape_check(self):
        prog = parse_program("for i = 1 to 4 { A[i] = 1 }")
        with pytest.raises(ValueError):
            generate_transformed_source(prog, IntMatrix([[1, 0], [0, 1]]))
