"""Tests for the scratchpad simulator and memory cost models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import NestBuilder, parse_program
from repro.linalg import IntMatrix
from repro.memory import (
    MemoryCostModel,
    access_energy_pj,
    access_latency_ns,
    area_mm2,
    simulate_scratchpad,
    size_memory_for_program,
)
from repro.window import max_total_window, max_window_size


EX8 = """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
"""


class TestScratchpad:
    def test_conservation(self):
        prog = parse_program(EX8)
        stats = simulate_scratchpad(prog, capacity=16, array="X")
        assert stats.hits + stats.misses == stats.accesses
        assert stats.accesses == prog.nest.total_iterations * 2

    def test_cold_misses_equal_distinct(self):
        from repro.estimation import exact_distinct_accesses

        prog = parse_program(EX8)
        stats = simulate_scratchpad(prog, capacity=8, array="X")
        assert stats.cold_misses == exact_distinct_accesses(prog, "X")

    def test_mws_capacity_eliminates_capacity_misses(self):
        prog = parse_program(EX8)
        mws = max_window_size(prog, "X")
        stats = simulate_scratchpad(prog, capacity=mws + 1, array="X")
        assert stats.capacity_misses == 0

    def test_small_capacity_thrashes(self):
        prog = parse_program(EX8)
        stats = simulate_scratchpad(prog, capacity=2, array="X")
        assert stats.capacity_misses > 0

    def test_monotone_in_capacity(self):
        prog = parse_program(EX8)
        misses = [
            simulate_scratchpad(prog, capacity=c, array="X").misses
            for c in (1, 4, 16, 64)
        ]
        assert misses == sorted(misses, reverse=True)

    def test_transformed_order_fewer_transfers(self):
        prog = parse_program(
            """
            for i = 1 to 20 {
              for j = 1 to 30 {
                Y[0] = X[2*i - 3*j]
              }
            }
            """
        )
        t = IntMatrix([[2, -3], [1, -1]])
        small = 4
        before = simulate_scratchpad(prog, small, array="X")
        after = simulate_scratchpad(prog, small, array="X", transformation=t)
        assert after.capacity_misses < before.capacity_misses
        assert after.capacity_misses == 0  # MWS 1 fits in any buffer

    def test_writebacks_counted(self):
        prog = parse_program("for i = 1 to 9 { A[i] = A[i] }")
        stats = simulate_scratchpad(prog, capacity=2, array="A")
        assert stats.writebacks == 9  # every written element flushed once

    def test_read_only_no_writebacks(self):
        prog = parse_program("for i = 1 to 9 { B[0] = A[i] }")
        stats = simulate_scratchpad(prog, capacity=2, array="A")
        assert stats.writebacks == 0

    def test_rejects_bad_capacity(self):
        prog = parse_program("for i = 1 to 4 { A[i] = 1 }")
        with pytest.raises(ValueError):
            simulate_scratchpad(prog, capacity=0)

    def test_unknown_array(self):
        prog = parse_program("for i = 1 to 4 { A[i] = 1 }")
        with pytest.raises(KeyError):
            simulate_scratchpad(prog, 4, array="Z")

    @given(st.integers(1, 40))
    @settings(max_examples=20, deadline=None)
    def test_belady_optimality_never_below_cold(self, capacity):
        prog = parse_program(EX8)
        stats = simulate_scratchpad(prog, capacity, array="X")
        assert stats.misses >= stats.cold_misses
        assert stats.hit_rate <= 1.0


class TestCostModels:
    def test_energy_monotone(self):
        assert access_energy_pj(4096) > access_energy_pj(64)

    def test_latency_monotone(self):
        assert access_latency_ns(4096) > access_latency_ns(64)

    def test_area_linear(self):
        model = MemoryCostModel()
        assert area_mm2(2048, model) == pytest.approx(2 * area_mm2(1024, model))

    def test_baseline_normalization(self):
        model = MemoryCostModel(base_capacity_words=1024, base_energy_pj=5.0)
        assert model.energy_per_access_pj(1024) == pytest.approx(5.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            access_energy_pj(0)

    def test_total_energy_tradeoff(self):
        # A bigger buffer costs more per access but saves off-chip traffic;
        # the model exposes both terms.
        model = MemoryCostModel()
        small = model.total_energy_pj(64, onchip_accesses=1000, offchip_transfers=500)
        large = model.total_energy_pj(4096, onchip_accesses=1000, offchip_transfers=100)
        assert small != large


class TestSizing:
    def test_sizing_report(self):
        prog = parse_program(EX8, name="ex8")
        report = size_memory_for_program(prog)
        assert report.mws_words == max_total_window(prog)
        assert report.provisioned_words >= report.mws_words
        # Power-of-two provisioning.
        assert report.provisioned_words & (report.provisioned_words - 1) == 0
        assert 0.0 <= report.memory_reduction <= 1.0

    def test_sizing_transformed_improves(self):
        prog = parse_program(EX8, name="ex8")
        t = IntMatrix([[2, 3], [1, 1]])
        before = size_memory_for_program(prog)
        after = size_memory_for_program(prog, t)
        assert after.mws_words < before.mws_words
        assert after.energy_per_access_pj <= before.energy_per_access_pj

    def test_sizing_no_pow2(self):
        prog = parse_program(EX8, name="ex8")
        report = size_memory_for_program(prog, round_pow2=False)
        assert report.provisioned_words == max(1, report.mws_words)
