"""Unit tests for the extended kernel suite and kernel structure."""

import pytest

from repro.dependence import program_dependences
from repro.kernels.extended import (
    EXTENDED_KERNELS,
    conv2d,
    downsample,
    fir,
    matvec,
    transpose,
)
from repro.window import max_window_size


class TestExtendedKernels:
    def test_registry(self):
        assert len(EXTENDED_KERNELS) == 5
        names = [spec.name for spec in EXTENDED_KERNELS]
        assert names == ["conv2d", "transpose", "fir", "downsample", "matvec"]

    def test_all_build(self):
        for spec in EXTENDED_KERNELS:
            prog = spec.build()
            assert prog.nest.total_iterations > 0

    def test_conv2d_reads(self):
        prog = conv2d(8, 3)
        stmt = prog.statements[0]
        assert len([r for r in stmt.reads if r.array == "A"]) == 9

    def test_conv2d_kernel_scalar_is_reduction_free(self):
        prog = conv2d(8, 3)
        deps = program_dependences(prog, include_input=False)
        # K is read-only and scalar-addressed: no ordering constraints
        # from it; B written once per element: no output deps.
        assert all(dep.array == "A" or dep.reduction for dep in deps) or not deps

    def test_transpose_access(self):
        prog = transpose(6)
        read = prog.statements[0].reads[0]
        assert read.element((2, 5)) == (5, 2)

    def test_transpose_distinct_counts(self):
        from repro.estimation import exact_distinct_accesses

        prog = transpose(6)
        assert exact_distinct_accesses(prog, "A") == 36
        assert exact_distinct_accesses(prog, "B") == 36

    def test_fir_window_scales_with_taps(self):
        short = max_window_size(fir(64, 4), "X")
        long = max_window_size(fir(64, 16), "X")
        assert short < long
        assert abs(long - 16) <= 2

    def test_downsample_stride(self):
        prog = downsample(8, 2)
        read = prog.statements[0].reads[0]
        assert read.element((3, 4)) == (6, 8)

    def test_matvec_y_window_small(self):
        prog = matvec(16)
        # Y[i] is accumulated within one i-row: tiny live set.
        assert max_window_size(prog, "Y") <= 2

    def test_matvec_matrix_streams(self):
        prog = matvec(16)
        # Each A element is read exactly once: empty window.
        assert max_window_size(prog, "A") == 0
