"""Tests for constraint systems, Fourier-Motzkin and lattice counting."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import Loop, LoopNest
from repro.linalg import IntMatrix, random_unimodular
from repro.polyhedral import (
    Constraint,
    ConstraintSystem,
    count_distinct_affine_1d,
    count_lattice_points,
    eliminate_variable,
    enumerate_lattice_points,
    loop_bounds,
)
from repro.polyhedral.counting import count_image_exact
from repro.ir.reference import ArrayRef


class TestConstraint:
    def test_satisfied(self):
        con = Constraint((1, -2), 3)  # x - 2y + 3 >= 0
        assert con.satisfied_by((1, 2))
        assert not con.satisfied_by((0, 2))

    def test_trivial(self):
        assert Constraint((0, 0), -1).is_contradiction()
        assert not Constraint((0, 0), 0).is_contradiction()
        assert Constraint((0, 0), 5).is_trivial()

    def test_normalized(self):
        con = Constraint((2, 4), 5).normalized()
        assert con.coeffs == (1, 2)
        assert con.const == 2  # floor(5/2)

    def test_normalized_preserves_integer_solutions(self):
        raw = Constraint((3, 6), 7)
        norm = raw.normalized()
        for x in range(-5, 6):
            for y in range(-5, 6):
                assert raw.satisfied_by((x, y)) == norm.satisfied_by((x, y))

    def test_render(self):
        text = Constraint((1, -2), 3).render(["i", "j"])
        assert "i" in text and "j" in text and ">= 0" in text

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            Constraint((1,), 0).satisfied_by((1, 2))


class TestConstraintSystem:
    def test_from_nest(self):
        nest = LoopNest([Loop("i", 1, 5), Loop("j", 2, 4)])
        system = ConstraintSystem.from_nest(nest)
        assert system.satisfied_by((1, 2))
        assert system.satisfied_by((5, 4))
        assert not system.satisfied_by((0, 3))
        assert not system.satisfied_by((3, 5))

    def test_transformed_nest_membership(self):
        nest = LoopNest([Loop("i", 1, 4), Loop("j", 1, 4)])
        t = IntMatrix([[1, 1], [0, 1]])
        system = ConstraintSystem.transformed_nest(nest, t)
        image = {t.apply(p) for p in nest.iterate()}
        for u1 in range(0, 10):
            for u2 in range(0, 6):
                assert system.satisfied_by((u1, u2)) == ((u1, u2) in image)

    def test_add_bounds(self):
        system = ConstraintSystem(["x"])
        system.add_lower(0, 2)
        system.add_upper(0, 5)
        assert system.satisfied_by((2,)) and system.satisfied_by((5,))
        assert not system.satisfied_by((1,)) and not system.satisfied_by((6,))

    def test_copy_independent(self):
        system = ConstraintSystem(["x"])
        system.add_lower(0, 0)
        clone = system.copy()
        clone.add_upper(0, 3)
        assert len(system.constraints) == 1


class TestFourierMotzkin:
    def test_eliminate_box(self):
        nest = LoopNest([Loop("i", 1, 5), Loop("j", 2, 7)])
        system = ConstraintSystem.from_nest(nest)
        bounds, projected = eliminate_variable(system, 1)
        assert bounds.lower_value((3,)) == 2
        assert bounds.upper_value((3,)) == 7
        # Projection of a box is the outer interval.
        assert projected.satisfied_by((1,)) and projected.satisfied_by((5,))

    def test_unbounded_raises(self):
        system = ConstraintSystem(["x", "y"])
        system.add_lower(1, 0)
        system.add_lower(0, 0)
        system.add_upper(0, 4)
        with pytest.raises(ValueError):
            eliminate_variable(system, 1)

    def test_loop_bounds_identity_box(self):
        nest = LoopNest([Loop("i", 1, 5), Loop("j", 2, 7)])
        bounds = loop_bounds(ConstraintSystem.from_nest(nest))
        assert bounds[0].lower_value(()) == 1
        assert bounds[0].upper_value(()) == 5
        assert bounds[1].lower_value((3,)) == 2
        assert bounds[1].upper_value((3,)) == 7

    def test_render_with_divisors(self):
        system = ConstraintSystem(["i", "j"])
        system.add(Constraint((2, 1), -3))  # 2i + j - 3 >= 0 -> j >= 3 - 2i
        system.add(Constraint((0, -1), 10))
        system.add_lower(0, 0)
        system.add_upper(0, 5)
        bounds = loop_bounds(system)
        text = bounds[1].render_lower(["i"])
        assert "i" in text

    def test_ceild_floord_rendering(self):
        system = ConstraintSystem(["i", "j"])
        system.add(Constraint((1, 2), 0))   # j >= -i/2
        system.add(Constraint((1, -2), 8))  # j <= (i+8)/2
        system.add_lower(0, 0)
        system.add_upper(0, 4)
        bounds = loop_bounds(system)
        assert "ceild" in bounds[1].render_lower(["i"])
        assert "floord" in bounds[1].render_upper(["i"])


def small_nests():
    return st.lists(
        st.tuples(st.integers(1, 3), st.integers(1, 5)),
        min_size=2,
        max_size=3,
    ).map(
        lambda dims: LoopNest(
            [Loop(f"i{k}", lo, lo + t - 1) for k, (lo, t) in enumerate(dims)]
        )
    )


class TestLattice:
    def test_count_box(self):
        nest = LoopNest([Loop("i", 1, 4), Loop("j", 1, 6)])
        system = ConstraintSystem.from_nest(nest)
        assert count_lattice_points(system) == 24

    def test_enumerate_order(self):
        nest = LoopNest([Loop("i", 1, 3), Loop("j", 1, 3)])
        system = ConstraintSystem.from_nest(nest)
        points = list(enumerate_lattice_points(system))
        assert points == sorted(points)

    @given(small_nests(), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_unimodular_image_count_preserved(self, nest, seed):
        t = random_unimodular(nest.depth, random.Random(seed), steps=6, max_mult=2)
        system = ConstraintSystem.transformed_nest(nest, t)
        assert count_lattice_points(system) == nest.total_iterations

    @given(small_nests(), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_unimodular_image_points_exact(self, nest, seed):
        t = random_unimodular(nest.depth, random.Random(seed), steps=6, max_mult=2)
        system = ConstraintSystem.transformed_nest(nest, t)
        points = set(enumerate_lattice_points(system))
        assert points == {t.apply(p) for p in nest.iterate()}


class TestCounting:
    def test_count_image_exact(self):
        nest = LoopNest([Loop("i", 1, 20), Loop("j", 1, 10)])
        ref = ArrayRef.of("A", [[2, 5]], [1])
        assert count_image_exact(nest, [ref]) == 80  # paper Example 4

    @given(
        st.integers(-8, 8),
        st.integers(-8, 8),
        st.integers(1, 15),
        st.integers(1, 15),
    )
    @settings(max_examples=150, deadline=None)
    def test_affine_1d_matches_enumeration(self, a, b, n1, n2):
        expected = len(
            {a * i + b * j for i in range(1, n1 + 1) for j in range(1, n2 + 1)}
        )
        assert count_distinct_affine_1d(a, b, n1, n2) == expected

    def test_affine_1d_paper_case(self):
        assert count_distinct_affine_1d(3, 7, 20, 20) == 179

    def test_affine_1d_degenerate(self):
        assert count_distinct_affine_1d(0, 0, 5, 5) == 1
        assert count_distinct_affine_1d(1, 0, 5, 9) == 5
        assert count_distinct_affine_1d(0, 4, 5, 9) == 9
        assert count_distinct_affine_1d(3, 7, 0, 5) == 0
