"""The asyncio HTTP front end (ISSUE 10 tentpole, layer 2).

Wire-format units (:mod:`repro.server.http`), token buckets
(:mod:`repro.server.quota`), and in-process integration against a real
listening socket: routing, warm store-served answers, per-tenant 429s,
admission 429s, the 504 timeout path that reclaims the worker slot, and
graceful shutdown.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.api import AnalysisService
from repro.obs import ledger as obs_ledger
from repro.obs import runctx
from repro.server import (
    BadRequest,
    ReproServer,
    TenantQuotas,
    TokenBucket,
    read_request,
    render_response,
)
from repro.store import ResultStore
from repro.transform.search import clear_exact_cache


@pytest.fixture
def observer():
    observer = obs.enable()
    try:
        yield observer
    finally:
        obs.disable()


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_exact_cache()
    yield
    clear_exact_cache()


# ----------------------------------------------------------------------
# wire format
# ----------------------------------------------------------------------

def _parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestHTTPParsing:
    def test_get_roundtrip(self):
        request = _parse(
            b"GET /healthz?probe=1 HTTP/1.1\r\n"
            b"Host: x\r\nX-Repro-Tenant: alice\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/healthz"  # query stripped
        assert request.headers["x-repro-tenant"] == "alice"
        assert request.body == b""

    def test_post_body(self):
        body = json.dumps({"kind": "mws", "kernel": "sor"}).encode()
        request = _parse(
            b"POST /analyze HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert request.json() == {"kind": "mws", "kernel": "sor"}

    def test_closed_peer_is_none(self):
        assert _parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(BadRequest, match="malformed request line"):
            _parse(b"NONSENSE\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(BadRequest, match="bad Content-Length"):
            _parse(b"POST /analyze HTTP/1.1\r\nContent-Length: pi\r\n\r\n")

    def test_oversized_body_rejected(self):
        with pytest.raises(BadRequest) as info:
            _parse(
                b"POST /analyze HTTP/1.1\r\n"
                b"Content-Length: 999999999\r\n\r\n"
            )
        assert info.value.status == 413

    def test_body_json_errors(self):
        request = _parse(
            b"POST /analyze HTTP/1.1\r\nContent-Length: 4\r\n\r\n{not"
        )
        with pytest.raises(BadRequest, match="not valid JSON"):
            request.json()

    def test_render_response_shapes(self):
        raw = render_response(200, {"a": 1})
        assert raw.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in raw
        assert b"Connection: close" in raw
        assert raw.endswith(b'{"a": 1}\n')
        text = render_response(429, "slow down")
        assert b"429 Too Many Requests" in text
        assert b"text/plain" in text


# ----------------------------------------------------------------------
# quotas
# ----------------------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst spent
        assert bucket.try_take(1.5)  # 1.5 tokens refilled
        assert not bucket.try_take(1.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=1.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(1000.0)
        assert not bucket.try_take(1000.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(0, 1)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(1, 0)


class TestTenantQuotas:
    def test_tenants_are_isolated(self):
        clock = [0.0]
        quotas = TenantQuotas(rate=1.0, burst=1.0, clock=lambda: clock[0])
        assert quotas.admit("alice")
        assert not quotas.admit("alice")
        assert quotas.admit("bob")  # alice's exhaustion is not bob's
        assert quotas.tenants() == 2

    def test_rate_none_admits_everything(self):
        quotas = TenantQuotas(rate=None)
        assert all(quotas.admit("t") for _ in range(1000))
        assert quotas.tenants() == 0

    def test_default_burst_is_twice_rate(self):
        quotas = TenantQuotas(rate=5.0)
        assert quotas.burst == 10.0


# ----------------------------------------------------------------------
# integration: a real listening server
# ----------------------------------------------------------------------

@contextlib.contextmanager
def _serve(tmp_path=None, **server_kwargs):
    service_kwargs = server_kwargs.pop("service_kwargs", {})
    service_kwargs.setdefault("workers", 1)
    if tmp_path is not None:
        service_kwargs.setdefault("store", tmp_path)
    service = AnalysisService(**service_kwargs)
    server = ReproServer(service, port=0, **server_kwargs)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.ready.wait(10.0), "server did not start"
    try:
        yield f"http://127.0.0.1:{server.bound_port}", server, service
    finally:
        server.stop()
        thread.join(timeout=10.0)
        service.close()
        assert not thread.is_alive()


def _call(url, method="GET", payload=None, tenant=None, timeout=30.0):
    headers = {}
    data = None
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    if tenant is not None:
        headers["X-Repro-Tenant"] = tenant
    request = urllib.request.Request(
        url, data=data, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            body = reply.read()
            code = reply.status
    except urllib.error.HTTPError as exc:
        body = exc.read()
        code = exc.code
    try:
        return code, json.loads(body)
    except ValueError:
        return code, body.decode("utf-8", "replace")


class TestRouting:
    def test_healthz(self):
        with _serve() as (url, server, _):
            code, body = _call(f"{url}/healthz")
        assert code == 200
        assert body["status"] == "ok"
        assert body["capacity"] == server.max_pending
        assert body["inflight"] == 0

    def test_unknown_route_404(self):
        with _serve() as (url, _, _):
            code, body = _call(f"{url}/nope")
        assert code == 404
        assert "no route" in body["error"]

    def test_wrong_method_405(self):
        with _serve() as (url, _, _):
            code, _ = _call(f"{url}/healthz", method="POST", payload={})
            assert code == 405
            code, _ = _call(f"{url}/analyze")
            assert code == 405

    def test_malformed_body_400(self):
        with _serve() as (url, _, _):
            code, body = _call(f"{url}/analyze", method="POST", payload={})
        assert code == 400
        assert "exactly one of" in body["error"]

    def test_metrics_exposition(self, observer):
        with _serve() as (url, _, _):
            _call(f"{url}/analyze", method="POST",
                  payload={"kind": "mws", "kernel": "2point"})
            code, text = _call(f"{url}/metrics")
        assert code == 200
        assert isinstance(text, str)
        assert "repro_server_requests_total" in text
        assert "repro_batch_items_ok_total 1" in text

    def test_runs_endpoints(self, tmp_path):
        store = ResultStore(tmp_path)
        ctx = runctx.RunContext(
            run_id="20250101-000000-aaaaaa", command="optimize",
            env={}, git=None,
        )
        obs_ledger.seal_run(ctx, {"counters": {"store.misses": 1}}, store)
        with _serve(tmp_path) as (url, _, _):
            code, body = _call(f"{url}/runs")
            assert code == 200
            assert body["runs"] == ["20250101-000000-aaaaaa"]
            code, record = _call(f"{url}/runs/last")
            assert code == 200
            assert record["run"] == "20250101-000000-aaaaaa"
            code, body = _call(f"{url}/runs/20990101-000000-ffffff")
            assert code == 404

    def test_shutdown_route_stops_server(self):
        service = AnalysisService(workers=1)
        server = ReproServer(service, port=0)
        thread = threading.Thread(target=server.run, daemon=True)
        thread.start()
        assert server.ready.wait(10.0)
        url = f"http://127.0.0.1:{server.bound_port}"
        code, body = _call(f"{url}/shutdown", method="POST", payload={})
        assert code == 202
        assert body["status"] == "shutting down"
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        service.close()


class TestAnalyze:
    def test_analysis_request_roundtrip(self, observer):
        with _serve() as (url, _, _):
            code, body = _call(
                f"{url}/analyze", method="POST",
                payload={"kind": "mws", "kernel": "2point"},
            )
        assert code == 200
        assert body["status"] == "ok"
        assert body["result"]["mws"] is not None
        assert observer.counters["server.requests"] >= 1

    def test_warm_request_is_store_served(self, tmp_path, observer):
        # The acceptance bullet: warm requests do zero engine
        # simulations — the counters prove it end to end over HTTP.
        payload = {"kind": "optimize", "kernel": "2point"}
        with _serve(tmp_path) as (url, _, _):
            code, cold = _call(f"{url}/analyze", method="POST",
                               payload=payload)
            assert code == 200 and not cold["warm"]
            clear_exact_cache()
            engine_calls = sum(
                value for name, value in observer.counters.items()
                if name.startswith("engine.") and name.endswith(".calls")
            )
            code, warm = _call(f"{url}/analyze", method="POST",
                               payload=payload)
            assert code == 200 and warm["warm"]
            assert warm["result"] == cold["result"]
            assert sum(
                value for name, value in observer.counters.items()
                if name.startswith("engine.") and name.endswith(".calls")
            ) == engine_calls

    def test_evaluation_error_is_422(self, observer):
        with _serve() as (url, _, _):
            code, body = _call(
                f"{url}/analyze", method="POST",
                payload={"kind": "mws", "kernel": "no_such_kernel"},
            )
        assert code == 422
        assert body["status"] == "error"
        assert observer.counters["server.request.error"] == 1


class TestQuota:
    def test_over_quota_tenant_gets_429_others_unaffected(self, observer):
        with _serve(quota_rate=0.001, quota_burst=2.0) as (url, _, _):
            payload = {"kind": "mws", "kernel": "2point"}
            for _ in range(2):
                code, _body = _call(f"{url}/analyze", method="POST",
                                    payload=payload, tenant="heavy")
                assert code == 200
            code, body = _call(f"{url}/analyze", method="POST",
                               payload=payload, tenant="heavy")
            assert code == 429
            assert body["reason"] == "quota"
            # A polite tenant is untouched by the heavy one's bucket.
            code, _body = _call(f"{url}/analyze", method="POST",
                                payload=payload, tenant="polite")
            assert code == 200
        assert observer.counters["server.quota.rejected"] == 1


class TestTimeoutAndAdmission:
    def test_hanging_request_times_out_and_slot_survives(self, observer):
        # The acceptance bullet: a hanging request gets 504, its worker
        # is killed and respawned, and the next request on the same
        # single-slot pool succeeds.
        with _serve(
            evaluator=_hang_on_sor_evaluator,
            service_kwargs={"workers": 1, "timeout": 1.0},
        ) as (url, _, _):
            code, body = _call(
                f"{url}/analyze", method="POST",
                payload={"kind": "mws", "kernel": "sor"},
            )
            assert code == 504
            assert body["status"] == "timeout"
            assert observer.counters["batch.worker.reclaimed"] == 1
            assert observer.counters["server.request.timeout"] == 1
            code, body = _call(
                f"{url}/analyze", method="POST",
                payload={"kind": "mws", "kernel": "2point"},
            )
            assert code == 200 and body["status"] == "ok"

    def test_admission_control_429_when_full(self, observer):
        # workers=1, queue_limit=0 -> capacity 1: while one request is
        # in flight the next is rejected immediately, not queued.
        with _serve(
            queue_limit=0,
            evaluator=_hang_on_sor_evaluator,
            service_kwargs={"workers": 1, "timeout": 3.0},
        ) as (url, server, _):
            results = {}

            def fire_slow():
                results["slow"] = _call(
                    f"{url}/analyze", method="POST",
                    payload={"kind": "mws", "kernel": "sor"},
                )

            slow = threading.Thread(target=fire_slow)
            slow.start()
            deadline = time.time() + 5.0
            while server._inflight == 0 and time.time() < deadline:
                time.sleep(0.02)
            assert server._inflight == 1
            code, body = _call(
                f"{url}/analyze", method="POST",
                payload={"kind": "mws", "kernel": "2point"},
            )
            assert code == 429
            assert body["reason"] == "admission"
            assert observer.counters["server.admission.rejected"] == 1
            slow.join(timeout=15.0)
            assert results["slow"][0] == 504


# Module-level so the service can pickle them to pool workers.
def _hang_on_sor_evaluator(kind, program, array, engine, store):
    if program.name == "sor":
        time.sleep(30)
    from repro.store.batch import _default_evaluator

    return _default_evaluator(kind, program, array, engine, store)
