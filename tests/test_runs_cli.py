"""The ``repro runs`` family and ``repro tail``: ledger reads, live
progress rendering, and the storeless failure mode."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import ledger, runctx
from repro.reporting import render_run_record, render_runs_table
from repro.store import ResultStore


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
    monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
    runctx.end_run()
    obs.disable()
    yield
    runctx.end_run()
    obs.disable()


RUN_A = "20250101-000000-aaaaaa"
RUN_B = "20250102-000000-bbbbbb"


@pytest.fixture
def seeded_store(tmp_path):
    """A store holding two synthetic runs: a cold one and a warm one."""
    store = ResultStore(tmp_path / "store")
    cold = runctx.RunContext(
        run_id=RUN_A, command="optimize", argv=("optimize", "x.loop"),
        env={}, git="abc1234", started_unix=1.0,
        inputs={"nest": "sig-1"},
    )
    ledger.seal_run(
        cold,
        {"counters": {"store.misses": 4, "engine.fast.calls": 2}},
        store, status=0, result_digest="d" * 64,
    )
    warm = runctx.RunContext(
        run_id=RUN_B, command="optimize", argv=("optimize", "x.loop"),
        env={}, git="abc1234", started_unix=2.0,
        inputs={"nest": "sig-1"},
    )
    ledger.seal_run(
        warm,
        {"counters": {"store.disk.hits": 4}},
        store, status=0, result_digest="d" * 64,
    )
    return store


def _main(argv):
    from repro.cli import main

    return main(argv)


class TestRunsList:
    def test_lists_oldest_first(self, seeded_store, capsys):
        assert _main(["--store", str(seeded_store.root), "runs", "list"]) == 0
        out = capsys.readouterr().out
        assert out.index(RUN_A) < out.index(RUN_B)
        assert "hit rate" in out
        assert "abc1234" in out

    def test_empty_store(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "store")
        assert _main(["--store", str(store.root), "runs", "list"]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_render_table_columns(self, seeded_store):
        table = render_runs_table(ledger.list_runs(seeded_store))
        lines = table.splitlines()
        assert lines[0].startswith("run")
        assert len(lines) == 4  # header, rule, two runs
        assert "0.0%" in lines[2]  # cold: all misses
        assert "100.0%" in lines[3]  # warm: all hits


class TestRunsShow:
    def test_show_defaults_to_last(self, seeded_store, capsys):
        assert _main(["--store", str(seeded_store.root), "runs", "show"]) == 0
        out = capsys.readouterr().out
        assert RUN_B in out
        assert "hit rate   : 100.0%" in out
        assert "sha256:" in out

    def test_show_by_prefix(self, seeded_store, capsys):
        assert _main(
            ["--store", str(seeded_store.root), "runs", "show", "20250101"]
        ) == 0
        assert RUN_A in capsys.readouterr().out

    def test_show_missing_run(self, seeded_store, capsys):
        assert _main(
            ["--store", str(seeded_store.root), "runs", "show", "zzz"]
        ) == 1
        assert "not found" in capsys.readouterr().err

    def test_render_record_lists_sections(self, seeded_store):
        record = ledger.load_run(seeded_store, RUN_A)
        text = render_run_record(record)
        assert "command    : optimize optimize x.loop" in text
        assert "engines    : fastx2" in text
        assert "nest: sig-1" in text


class TestRunsDiff:
    def test_diff_defaults_to_last_pair(self, seeded_store, capsys):
        assert _main(["--store", str(seeded_store.root), "runs", "diff"]) == 0
        out = capsys.readouterr().out
        assert f"runs {RUN_A} -> {RUN_B}" in out
        assert "attributed to store/cache hits" in out
        assert "identical output digest" in out
        assert "code       : unchanged" in out

    def test_diff_missing_run(self, seeded_store, capsys):
        assert _main(
            ["--store", str(seeded_store.root), "runs", "diff", "zzz", "last"]
        ) == 1
        assert "not found" in capsys.readouterr().err


class TestStoreless:
    @pytest.mark.parametrize("argv", [
        ["runs", "list"],
        ["runs", "show", "last"],
        ["tail", "some-run"],
    ])
    def test_fails_with_pointer_to_knobs(self, argv, capsys):
        assert _main(argv) == 1
        err = capsys.readouterr().err
        assert "no run ledger" in err
        assert "REPRO_LEDGER_DIR" in err


def _write_live(store, run_id, events):
    live = ledger.live_dir_for(store)
    live.mkdir(parents=True, exist_ok=True)
    path = live / f"{run_id}.jsonl"
    path.write_text(
        "".join(json.dumps(e) + "\n" for e in events), encoding="utf-8"
    )
    return path


class TestWatchAndTail:
    def test_watch_once_without_live_runs(self, seeded_store, capsys):
        assert _main(
            ["--store", str(seeded_store.root), "runs", "watch", "--once"]
        ) == 0
        assert "no live runs" in capsys.readouterr().out

    def test_watch_once_renders_live_runs(self, seeded_store, capsys):
        _write_live(seeded_store, RUN_A, [
            {"ev": "item_start", "pid": 7, "item": "#0 mws sor", "ts": 1.0},
            {"ev": "batch_progress", "pid": 7, "done": 0, "total": 2,
             "eta_s": 4.0, "ts": 1.0},
        ])
        assert _main(
            ["--store", str(seeded_store.root), "runs", "watch", "--once"]
        ) == 0
        out = capsys.readouterr().out
        assert f"run {RUN_A}" in out
        assert "pid 7: #0 mws sor" in out
        assert "batch: 0/2" in out

    def test_tail_once_by_prefix(self, seeded_store, capsys):
        _write_live(seeded_store, RUN_A, [
            {"ev": "item_start", "pid": 7, "item": "#0 mws sor", "ts": 1.0},
        ])
        assert _main(
            ["--store", str(seeded_store.root), "tail", "20250101", "--once"]
        ) == 0
        assert "pid 7" in capsys.readouterr().out

    def test_tail_ambiguous_prefix(self, seeded_store, capsys):
        _write_live(seeded_store, RUN_A, [])
        _write_live(seeded_store, RUN_B, [])
        assert _main(
            ["--store", str(seeded_store.root), "tail", "2025", "--once"]
        ) == 1
        assert "ambiguous" in capsys.readouterr().err

    def test_tail_missing_run(self, seeded_store, capsys):
        assert _main(
            ["--store", str(seeded_store.root), "tail", "zzz", "--once"]
        ) == 1
        assert "no live file" in capsys.readouterr().err

    def test_tail_stops_at_run_end_without_once(self, seeded_store, capsys):
        # The run_end heartbeat ends the follow loop, so no --once needed.
        _write_live(seeded_store, RUN_A, [
            {"ev": "item_done", "pid": 7, "item": "#0 mws sor", "ts": 1.0},
            {"ev": "run_end", "pid": 7, "status": 0, "ts": 2.0},
        ])
        assert _main(
            ["--store", str(seeded_store.root), "tail", RUN_A]
        ) == 0
        assert "run ended" in capsys.readouterr().out
