"""Tiered pruning cascade: admissibility, winner identity, accounting.

:func:`repro.transform.search.evaluate_cascade` may only skip a
candidate when an *admissible* lower bound (tier-1 certified fact or
tier-2 clipped-program MWS) proves it cannot strictly beat the running
incumbent — so its winner, and every exact value it reports, must be
identical to exhaustively simulating with :func:`evaluate_exact`.
These tests drive randomized differentials over both tiers, the
certified-reuse facts behind tier 1, the clipped-program bound behind
tier 2, the branch-and-bound incumbent seeding, the lazy 2-D
enumeration against its eager oracle, and the journal/counter
reconciliation for cascade prunes.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro import obs
from repro.estimation.bounds import (
    certified_reuse,
    certified_zero_total,
    clear_clip_cache,
    clipped_program,
)
from repro.ir import parse_program
from repro.ir.generate import GeneratorConfig, random_program
from repro.transform import journal
from repro.transform.branch_bound import branch_and_bound_mws_2d
from repro.transform.elementary import (
    bounded_unimodular_matrices,
    signed_permutations,
)
from repro.transform.legality import is_legal, ordering_distances
from repro.transform.search import (
    clear_exact_cache,
    evaluate_cascade,
    evaluate_exact,
    search_mws_2d,
    search_mws_2d_eager,
)
from repro.window.fast import max_window_size_fast

EXAMPLE_8 = """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
"""

NO_REUSE = """
for i = 1 to 6 {
  for j = 1 to 5 {
    X[i][j] = 1
  }
}
"""

_CFG = GeneratorConfig(depth=2, min_trip=2, max_trip=6, max_coeff=3)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_exact_cache()
    clear_clip_cache()
    yield
    clear_exact_cache()
    clear_clip_cache()


def _candidates(program, array):
    dists = ordering_distances(program, array)
    return [t for t in bounded_unimodular_matrices(2, 2) if is_legal(t, dists)]


def _first_min(values):
    best = None
    for idx, value in enumerate(values):
        if best is None or value < values[best]:
            best = idx
    return best


class TestAdmissibility:
    @pytest.mark.parametrize("seed", range(25))
    def test_cascade_never_discards_a_winner(self, seed):
        """Exact outcomes match simulation; prunes never under-run their
        candidate's true MWS; first-wins winner is identical."""
        program = random_program(seed, _CFG)
        array = program.arrays[0]
        candidates = [t for t in signed_permutations(2)
                      if is_legal(t, ordering_distances(program, array))]
        if not candidates:
            pytest.skip("no legal candidate")
        truth = evaluate_exact(program, candidates, array=array)
        clear_exact_cache()
        outcomes = evaluate_cascade(
            program, candidates, array=array, clip_budget=8,
        )
        for outcome, exact in zip(outcomes, truth):
            if outcome.exact:
                assert outcome.value == exact
            else:
                assert outcome.value <= exact, (
                    f"inadmissible prune: lb={outcome.value} > exact={exact}"
                )
        winner_truth = _first_min(truth)
        exact_values = [o.value if o.exact else None for o in outcomes]
        best = None
        for idx, value in enumerate(exact_values):
            if value is None:
                continue
            if best is None or value < exact_values[best]:
                best = idx
        assert best == winner_truth
        assert outcomes[best].value == truth[winner_truth]

    def test_first_candidate_is_always_exact(self):
        program = parse_program(EXAMPLE_8)
        outcomes = evaluate_cascade(
            program, _candidates(program, "X"), array="X", clip_budget=16,
        )
        assert outcomes[0].exact

    def test_tier2_prunes_with_good_incumbent(self):
        """With the search winner first, the clipped bound must pay off —
        and still return the identical best value."""
        program = parse_program("""
for i = 1 to 300 {
  for j = 1 to 300 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
""")
        winner = search_mws_2d(program, "X").transformation
        candidates = [winner] + _candidates(program, "X")
        truth = evaluate_exact(program, candidates, array="X")
        clear_exact_cache()
        observer = obs.enable()
        try:
            outcomes = evaluate_cascade(program, candidates, array="X")
        finally:
            obs.disable()
        assert observer.counters["search.cascade.tier2_pruned"] > 0
        assert min(o.value for o in outcomes if o.exact) == min(truth)


class TestTier1:
    def test_certified_reuse_on_example8(self):
        program = parse_program(EXAMPLE_8)
        assert certified_reuse(program, "X") is True

    def test_certified_zero_on_single_touch_program(self):
        program = parse_program(NO_REUSE)
        assert certified_reuse(program, "X") is False
        assert certified_zero_total(program)
        # The certificate claims MWS 0 under ANY ordering — verify.
        for t in signed_permutations(2):
            assert max_window_size_fast(program, "X", t) == 0

    def test_zero_certified_cascade_skips_all_simulation(self):
        program = parse_program(NO_REUSE)
        candidates = list(signed_permutations(2))
        observer = obs.enable()
        try:
            outcomes = evaluate_cascade(program, candidates, array="X")
        finally:
            obs.disable()
        assert all(o.exact and o.value == 0 for o in outcomes)
        assert observer.counters["search.cascade.tier1"] == len(candidates)
        assert "fast.simulate.calls" not in observer.counters
        # The certified zeros are cached as ordinary exact results.
        assert evaluate_exact(program, candidates, array="X") == [0] * len(candidates)

    @pytest.mark.parametrize("seed", range(40))
    def test_certificates_are_sound(self, seed):
        """True => exact >= 1 under every ordering; False => exact 0."""
        program = random_program(seed, _CFG)
        for array in program.arrays:
            verdict = certified_reuse(program, array)
            if verdict is None:
                continue
            for t in [None] + list(signed_permutations(2)):
                exact = max_window_size_fast(program, array, t)
                if verdict:
                    assert exact >= 1
                else:
                    assert exact == 0


class TestTier2Bound:
    @pytest.mark.parametrize("seed", range(25))
    def test_clipped_mws_lower_bounds_full(self, seed):
        cfg = GeneratorConfig(depth=2, min_trip=4, max_trip=9, max_coeff=3)
        program = random_program(seed, cfg)
        clipped = clipped_program(program, budget=12)
        assert clipped.nest.total_iterations <= max(
            12, 16
        )  # min-keep of 4 per axis can overshoot tiny budgets
        for array in program.arrays:
            for t in [None] + list(signed_permutations(2)):
                lb = max_window_size_fast(clipped, array, t)
                full = max_window_size_fast(program, array, t)
                assert lb <= full

    def test_clip_keeps_lower_bounds_and_caches(self):
        program = parse_program(EXAMPLE_8)
        clipped = clipped_program(program, budget=50)
        assert [loop.lower for loop in clipped.nest.loops] == \
            [loop.lower for loop in program.nest.loops]
        assert clipped.nest.total_iterations <= 50
        assert clipped_program(program, budget=50) is clipped


class TestAccounting:
    def test_counters_reconcile_with_journal(self):
        program = parse_program("""
for i = 1 to 200 {
  for j = 1 to 200 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
""")
        winner = search_mws_2d(program, "X").transformation
        clear_exact_cache()
        candidates = [winner] + _candidates(program, "X")
        observer = obs.enable()
        jr = journal.enable()
        try:
            outcomes = evaluate_cascade(program, candidates, array="X")
        finally:
            journal.disable()
            obs.disable()
        counters = observer.counters
        counts = jr.counts()
        # Every prune wrote exactly one stage-"cascade" journal record.
        assert counts["cascade_pruned"] == counters["search.cascade.pruned"]
        assert counters["search.cascade.pruned"] == (
            counters["search.cascade.tier1"]
            + counters["search.cascade.tier2_pruned"]
        )
        pruned = sum(1 for o in outcomes if not o.exact)
        simulated = sum(1 for o in outcomes if o.tier == "simulated")
        cached = sum(1 for o in outcomes if o.tier == "cache")
        assert pruned == counters["search.cascade.pruned"]
        assert simulated == counters["search.cascade.simulated"]
        assert pruned + simulated + cached == len(candidates)
        from repro.reporting.journal import render_reconciliation

        _, ok = render_reconciliation(jr, counters)
        assert ok

    def test_lower_bound_stage_stays_out_of_ranked(self):
        program = parse_program("""
for i = 1 to 200 {
  for j = 1 to 200 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
""")
        candidates = _candidates(program, "X")
        jr = journal.enable()
        try:
            evaluate_cascade(program, candidates, array="X")
        finally:
            journal.disable()
        assert jr.by_stage("lower_bound"), "tier-2 batch should have run"
        ranked_candidates = {r.candidate for r in jr.ranked()}
        # Ranked rows come from full-program evaluation only; the clipped
        # lower bounds never leak into the candidate table.
        for record in jr.by_stage("lower_bound"):
            assert record.stage != "evaluate"
        assert all(r.exact is not None for r in jr.ranked())
        assert len(ranked_candidates) <= len(candidates)


class TestBranchBoundIncumbent:
    DISTANCES = [(3, -2), (2, 0), (5, -2)]

    def test_unseeded_behavior_unchanged(self):
        result = branch_and_bound_mws_2d(2, 5, 25, 10, self.DISTANCES)
        assert result.row == (2, 3)
        assert result.objective == Fraction(22, 1)

    def test_seeded_explores_fewer_nodes_same_result(self):
        plain = branch_and_bound_mws_2d(2, 5, 25, 10, self.DISTANCES)
        seeded = branch_and_bound_mws_2d(
            2, 5, 25, 10, self.DISTANCES, incumbent=Fraction(22, 1)
        )
        assert seeded.row == plain.row
        assert seeded.objective == plain.objective
        assert seeded.nodes_explored <= plain.nodes_explored
        assert seeded.candidates_evaluated < plain.candidates_evaluated

    def test_loose_incumbent_is_a_no_op(self):
        plain = branch_and_bound_mws_2d(2, 5, 25, 10, self.DISTANCES)
        seeded = branch_and_bound_mws_2d(
            2, 5, 25, 10, self.DISTANCES, incumbent=10_000
        )
        assert (seeded.row, seeded.objective) == (plain.row, plain.objective)

    def test_incumbent_prune_counter(self):
        observer = obs.enable()
        try:
            branch_and_bound_mws_2d(
                2, 5, 25, 10, self.DISTANCES, incumbent=Fraction(5, 1)
            )
        finally:
            obs.disable()
        assert observer.counters.get("search.bb.incumbent_pruned", 0) > 0


class TestLazyEnumeration:
    @pytest.mark.parametrize("seed", range(30))
    def test_lazy_matches_eager(self, seed):
        program = random_program(seed, _CFG)
        array = program.arrays[0]
        try:
            clear_exact_cache()
            eager = search_mws_2d_eager(program, array, bound=5)
        except (ValueError, KeyError):
            return
        clear_exact_cache()
        lazy = search_mws_2d(program, array, bound=5)
        assert lazy.transformation.rows == eager.transformation.rows
        assert lazy.estimated_mws == eager.estimated_mws
        assert lazy.exact_mws == eager.exact_mws
        assert lazy.candidates_examined == eager.candidates_examined

    def test_lazy_skips_completions(self):
        program = parse_program(EXAMPLE_8)
        observer = obs.enable()
        try:
            search_mws_2d(program, "X", bound=8)
        finally:
            obs.disable()
        assert observer.counters["search.lazy.skipped"] > 0
        completed = observer.counters["search.lazy.completed"]
        assert completed < observer.counters["search.candidates.examined"]

    def test_search_memo_roundtrip(self):
        program = parse_program(EXAMPLE_8)
        first = search_mws_2d(program, "X")
        observer = obs.enable()
        try:
            second = search_mws_2d(program, "X")
        finally:
            obs.disable()
        assert second is first
        assert observer.counters["search.memo.hits"] == 1

    def test_journal_bypasses_search_memo(self):
        program = parse_program(EXAMPLE_8)
        search_mws_2d(program, "X")  # populate the memo
        jr = journal.enable()
        try:
            result = search_mws_2d(program, "X")
        finally:
            journal.disable()
        assert result.exact_mws == 21
        counts = jr.counts()
        assert counts["examined"] > 0
        assert counts["rejected"] + len(
            [r for r in jr.by_stage("enumerate") if r.status == "candidate"]
        ) == counts["examined"]
