"""Tests for loop fusion across nest sequences."""

import pytest

from repro.ir import parse_program
from repro.ir.interpreter import execute, initial_state, states_equal
from repro.ir.sequence import ProgramSequence, sequence_memory_report
from repro.transform.fusion import (
    FusionError,
    can_fuse,
    fuse,
    fusion_memory_report,
)
from repro.window import max_total_window


def producer(name="produce"):
    return parse_program(
        "for i = 1 to 16 { for j = 1 to 16 { P1: T[i][j] = A[i][j] } }",
        name=name,
    )


def consumer(name="consume"):
    return parse_program(
        "for i = 1 to 16 { for j = 1 to 16 { C1: B[i][j] = T[i][j] + T[i-1][j] } }",
        name=name,
    )


class TestCanFuse:
    def test_legal_chain(self):
        ok, reason = can_fuse(producer(), consumer())
        assert ok, reason

    def test_mismatched_bounds(self):
        other = parse_program(
            "for i = 1 to 8 { for j = 1 to 16 { C1: B[i][j] = T[i][j] } }"
        )
        ok, reason = can_fuse(producer(), other)
        assert not ok and "nests differ" in reason

    def test_duplicate_labels(self):
        a = parse_program("for i = 1 to 4 { S1: T[i] = A[i] }")
        b = parse_program("for i = 1 to 4 { S1: B[i] = T[i] }")
        ok, reason = can_fuse(a, b)
        assert not ok and "labels" in reason

    def test_fusion_preventing_forward_read(self):
        # The consumer reads T[i+1], produced later: illegal to fuse.
        a = parse_program("for i = 1 to 8 { P1: T[i] = A[i] }")
        b = parse_program("for i = 1 to 8 { C1: B[i] = T[i+1] }")
        ok, reason = can_fuse(a, b)
        assert not ok and "fusion-preventing" in reason

    def test_same_iteration_flow_is_fusable(self):
        a = parse_program("for i = 1 to 8 { P1: T[i] = A[i] }")
        b = parse_program("for i = 1 to 8 { C1: B[i] = T[i] }")
        ok, _ = can_fuse(a, b)
        assert ok


class TestFuse:
    def test_fused_structure(self):
        fused = fuse(producer(), consumer())
        assert len(fused.statements) == 2
        assert fused.nest == producer().nest
        assert fused.name == "produce+consume"

    def test_fuse_rejects_illegal(self):
        a = parse_program("for i = 1 to 8 { P1: T[i] = A[i] }")
        b = parse_program("for i = 1 to 8 { C1: B[i] = T[i+1] }")
        with pytest.raises(FusionError):
            fuse(a, b)

    def test_fusion_preserves_semantics(self):
        # The fused program computes the same final arrays as the chain.
        a, b = producer(), consumer()
        fused = fuse(a, b)
        state = initial_state(fused)
        chained = execute(b, state=execute(a, state=state))
        as_fused = execute(fused, state=state)
        assert states_equal(chained, as_fused)

    def test_fusion_shrinks_intermediate_window(self):
        report = fusion_memory_report(producer(), consumer())
        # Unfused: the whole 16x16 T crosses the boundary (256 elements).
        assert report.unfused_requirement >= 256
        # Fused: only a row of T stays live.
        assert report.fused_requirement <= 2 * 16 + 8
        assert report.saving > 0.8

    def test_fused_window_matches_direct_measure(self):
        fused = fuse(producer(), consumer())
        report = fusion_memory_report(producer(), consumer())
        assert report.fused_requirement == max_total_window(fused)

    def test_sequence_report_consistency(self):
        seq = ProgramSequence([producer(), consumer()])
        seq_report = sequence_memory_report(seq)
        fusion_report = fusion_memory_report(producer(), consumer())
        assert fusion_report.unfused_requirement == seq_report.requirement
