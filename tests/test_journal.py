"""Search-journal tests: recording, ranking, and reconciliation of the
journal's tallies against the observer's counters."""

from __future__ import annotations

import pytest

from repro import obs
from repro.ir import parse_program
from repro.reporting import (
    reconcile,
    render_candidate_table,
    render_reconciliation,
)
from repro.transform import journal
from repro.transform.branch_bound import branch_and_bound_mws_2d
from repro.transform.journal import SearchJournal
from repro.transform.search import (
    clear_exact_cache,
    search_best_transformation,
    search_mws_2d,
)

EX8 = """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
"""


@pytest.fixture(autouse=True)
def clean_state():
    obs.disable()
    journal.disable()
    clear_exact_cache()
    yield
    obs.disable()
    journal.disable()
    clear_exact_cache()


def _run_2d():
    program = parse_program(EX8)
    observer = obs.enable()
    jr = journal.enable()
    result = search_mws_2d(program, "X")
    journal.disable()
    obs.disable()
    return result, jr, observer.summary().get("counters", {})


class TestJournalLifecycle:
    def test_disabled_by_default(self):
        assert journal.active() is None
        assert not journal.enabled()

    def test_search_runs_without_journal(self):
        program = parse_program(EX8)
        result = search_mws_2d(program, "X")
        assert result.exact_mws is not None
        assert journal.active() is None

    def test_enable_disable_round_trip(self):
        jr = journal.enable()
        assert journal.active() is jr
        assert journal.disable() is jr
        assert journal.active() is None

    def test_enable_replaces_previous_journal(self):
        first = journal.enable()
        second = journal.enable()
        assert first is not second
        assert journal.active() is second


class TestSearchRecording:
    def test_every_examined_candidate_recorded(self):
        result, jr, counters = _run_2d()
        counts = jr.counts()
        assert counts["examined"] == result.candidates_examined
        assert counts["examined"] == counters["search.candidates.examined"]
        # Each examined candidate is exactly one record: either rejected
        # with a reason or admitted with an estimate.
        admitted = [
            r for r in jr.by_stage("enumerate") if r.status == "candidate"
        ]
        assert counts["rejected"] + len(admitted) == counts["examined"]
        assert all(r.reason for r in jr.by_status("rejected"))
        assert all(r.estimate is not None for r in admitted)

    def test_reconciles_with_counters(self):
        _, jr, counters = _run_2d()
        for label, jcount, ccount in reconcile(jr, counters):
            assert jcount == ccount, label

    def test_cache_hits_recorded_on_rerun(self):
        program = parse_program(EX8)
        obs.enable()
        search_mws_2d(program, "X")  # warm the exact cache
        observer = obs.enable()  # fresh counters
        jr = journal.enable()
        search_mws_2d(program, "X")
        journal.disable()
        obs.disable()
        counters = observer.summary()["counters"]
        counts = jr.counts()
        assert counts["cache_hits"] > 0
        assert counts["cache_hits"] == counters["search.cache.hits"]
        assert counts["cache_misses"] == counters.get("search.cache.misses", 0)

    def test_ranked_is_best_first_with_joined_estimates(self):
        result, jr, _ = _run_2d()
        ranked = jr.ranked()
        assert ranked
        assert ranked[0].exact == result.exact_mws
        exacts = [r.exact for r in ranked]
        assert exacts == sorted(exacts)
        # 2-D enumerate records carry estimates; the join must surface them.
        assert all(r.estimate is not None for r in ranked)

    def test_rejection_reasons_tallied(self):
        _, jr, _ = _run_2d()
        reasons = jr.rejection_reasons()
        assert reasons
        assert set(reasons) <= {"tiling", "completion", "legality"}
        assert sum(reasons.values()) == jr.counts()["rejected"]

    def test_dispatcher_records_for_3d(self):
        program = parse_program(
            """
            for i = 1 to 6 {
              for j = 1 to 6 {
                for k = 1 to 6 {
                  B[0] = A[3*i + k][j + k]
                }
              }
            }
            """
        )
        observer = obs.enable()
        jr = journal.enable()
        search_best_transformation(program, "A", workers=0)
        journal.disable()
        obs.disable()
        counters = observer.summary()["counters"]
        for label, jcount, ccount in reconcile(jr, counters):
            assert jcount == ccount, label
        assert jr.counts()["seeded"] >= 1


class TestBranchBoundRecording:
    DISTS = [(3, -2), (2, 0), (5, -2)]

    def test_prunes_and_leaves_reconcile(self):
        observer = obs.enable()
        jr = journal.enable()
        branch_and_bound_mws_2d(2, 5, 25, 10, self.DISTS, bound=16)
        journal.disable()
        obs.disable()
        counters = observer.summary()["counters"]
        counts = jr.counts()
        assert counts["pruned"] == counters["search.bb.pruned"]
        assert counts["bb_evaluated"] == counters["search.bb.evaluated"]
        assert counts["pruned"] > 0
        reasons = {r.reason.split(":", 1)[0] for r in jr.by_status("pruned")}
        assert reasons <= {"infeasible", "bound"}

    def test_bb_unaffected_by_journal(self):
        plain = branch_and_bound_mws_2d(2, 5, 25, 10, self.DISTS, bound=16)
        journal.enable()
        journaled = branch_and_bound_mws_2d(2, 5, 25, 10, self.DISTS, bound=16)
        journal.disable()
        assert plain == journaled


class TestRendering:
    def test_candidate_table_lists_ranked_and_rejections(self):
        result, jr, _ = _run_2d()
        table = render_candidate_table(jr)
        assert "rank" in table
        assert str(result.transformation.rows) in table
        assert "rejections:" in table
        assert "tiling" in table

    def test_empty_journal_renders_placeholder(self):
        assert render_candidate_table(SearchJournal()) == "(empty journal)"

    def test_reconciliation_flags_mismatch(self):
        jr = SearchJournal()
        jr.record("enumerate", ((1, 0), (0, 1)), "candidate", estimate=1)
        text, ok = render_reconciliation(jr, {})
        assert not ok
        assert "MISMATCH" in text

    def test_reconciliation_ok_when_counts_agree(self):
        _, jr, counters = _run_2d()
        text, ok = render_reconciliation(jr, counters)
        assert ok
        assert "MISMATCH" not in text


class TestExplainCli:
    def test_explain_kernel_exits_zero_and_reconciles(self, capsys):
        from repro.cli import main

        assert main(["explain", "sor"]) == 0
        out = capsys.readouterr().out
        assert "2d-enumeration" in out
        assert "rejections:" in out
        assert "journal/counter reconciliation:" in out
        assert "MISMATCH" not in out

    def test_explain_file_target(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "ex8.txt"
        source.write_text(EX8)
        assert main(["explain", str(source)]) == 0
        out = capsys.readouterr().out
        assert "search for array X" in out

    def test_explain_unknown_kernel_errors(self, capsys):
        from repro.cli import main

        assert main(["explain", "no_such_kernel"]) == 1
        assert "error:" in capsys.readouterr().err
