"""Persistence of the parametric record kind.

The guarantees under test: a derived expression round-trips through the
store's JSON layer bit-for-bit (``srepr`` in, ``sympify`` out), corrupt
or alien payloads decode as misses (counted, never a crash), failed
derivations are persisted so warm runs skip re-deriving them, and — the
headline — a warm process answers *N* different problem sizes from one
stored record without a single simulator call.
"""

from __future__ import annotations

import json

import pytest
import sympy

from repro import obs
from repro.estimation.parametric import (
    ParametricExpr,
    clear_param_cache,
    decode_parametric,
    encode_parametric,
    parametric_signature,
    parametric_value,
    resolve_parametric,
    with_trip_counts,
)
from repro.estimation.symbolic import trip_symbols
from repro.ir import parse_program
from repro.kernels.suite import threestep_log
from repro.store import ResultStore
from repro.transform.search import clear_exact_cache, evaluate_exact
from repro.window import max_window_size

EXAMPLE8 = parse_program(
    """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j] = X[2*i + 5*j]
  }
}
""",
    name="example8",
)

#: Engine counters that must stay silent on the warm path.
SIMULATOR_COUNTERS = (
    "fast.simulate.calls",
    "simulator.reference.calls",
    "streaming.simulate.calls",
)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_param_cache()
    clear_exact_cache()
    yield
    clear_param_cache()
    clear_exact_cache()


@pytest.fixture
def observer():
    observer = obs.enable()
    try:
        yield observer
    finally:
        obs.disable()


def _example8_expr() -> ParametricExpr:
    n1, n2 = trip_symbols(2)
    return ParametricExpr(
        "mws", "X", 5 * n2 - 10, (n1, n2), (12, 6), "interpolated-deg1", 8
    )


class TestCodec:
    def test_roundtrip_preserves_everything(self):
        pe = _example8_expr()
        decoded = decode_parametric(encode_parametric(pe))
        assert decoded == pe
        assert decoded.substitute((25, 10)) == 40

    def test_payload_is_json_safe_and_schema_stamped(self):
        payload = encode_parametric(_example8_expr())
        assert payload["schema"] == 1
        assert json.loads(json.dumps(payload)) == payload
        assert payload["expr"] == sympy.srepr(5 * trip_symbols(2)[1] - 10)

    def test_rational_interpolant_roundtrips_exactly(self):
        n1, n2 = trip_symbols(2)
        expr = (n1 * n2 - n1) / sympy.Integer(2) + sympy.Rational(3, 2)
        pe = ParametricExpr(
            "distinct", "A", expr, (n1, n2), (3, 3), "interpolated-deg2", 7
        )
        decoded = decode_parametric(encode_parametric(pe))
        assert sympy.expand(decoded.expr - expr) == 0

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda p: None,
            lambda p: "garbage",
            lambda p: {**p, "schema": 2},
            lambda p: {**p, "expr": "not sympy ]]]"},
            lambda p: {**p, "expr": "Symbol('rogue')"},
            lambda p: {**p, "domain": [3]},
            lambda p: {**p, "symbols": ["N1", "bogus"]},
            lambda p: {k: v for k, v in p.items() if k != "expr"},
        ],
        ids=[
            "none", "string", "wrong-schema", "unparsable-expr",
            "stray-symbol", "domain-arity", "alien-symbol-names",
            "missing-expr",
        ],
    )
    def test_corrupt_payloads_decode_as_counted_miss(self, mangle, observer):
        payload = mangle(encode_parametric(_example8_expr()))
        assert decode_parametric(payload) is None
        assert observer.counters["store.corrupt"] == 1

    def test_decode_never_executes_expression_payloads(self):
        """sympify of a hostile-looking srepr must fail closed (the
        validation rejects anything with symbols outside N1..Nn)."""
        payload = encode_parametric(_example8_expr())
        payload["expr"] = "Symbol('N1') + Symbol('__import__')"
        assert decode_parametric(payload) is None


class TestResolutionThroughStore:
    def test_record_keyed_by_family_not_bounds(self, tmp_path):
        store = ResultStore(tmp_path)
        pe = resolve_parametric(EXAMPLE8, "mws", array="X", store=store)
        assert pe is not None
        psig = parametric_signature(EXAMPLE8)
        key = {"psig": psig, "kind": "mws", "array": "X", "t": None}
        assert store.get("parametric", key) == encode_parametric(pe)
        # A resized family member hits the same record.
        resized = with_trip_counts(EXAMPLE8, (60, 31))
        assert parametric_signature(resized) == psig

    def test_failed_derivation_marker_persists(self, tmp_path, observer):
        program = threestep_log(16, 4, 4)
        store = ResultStore(tmp_path)
        assert resolve_parametric(program, "mws", array="R", store=store) is None
        assert observer.counters["param.derive_failed"] == 1
        key = {
            "psig": parametric_signature(program),
            "kind": "mws",
            "array": "R",
            "t": None,
        }
        assert store.get("parametric", key) == {"schema": 1, "failed": True}
        # Warm process: the marker answers without re-deriving.
        clear_param_cache()
        warm = ResultStore(tmp_path)
        before = observer.counters["param.derive_failed"]
        assert resolve_parametric(program, "mws", array="R", store=warm) is None
        assert observer.counters["param.derive_failed"] == before

    def test_corrupt_record_heals_by_rederivation(self, tmp_path):
        store = ResultStore(tmp_path)
        pe = resolve_parametric(EXAMPLE8, "mws", array="X", store=store)
        key = {
            "psig": parametric_signature(EXAMPLE8),
            "kind": "mws",
            "array": "X",
            "t": None,
        }
        path = store.record_path("parametric", key)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        clear_param_cache()
        warm = ResultStore(tmp_path)
        again = resolve_parametric(EXAMPLE8, "mws", array="X", store=warm)
        assert again == pe
        assert warm.get("parametric", key) == encode_parametric(pe)

    def test_garbled_payload_inside_valid_record_is_a_miss(self, tmp_path):
        """Outer store record intact, inner parametric payload corrupt:
        decode_parametric turns it into a recompute, not a crash."""
        store = ResultStore(tmp_path)
        resolve_parametric(EXAMPLE8, "mws", array="X", store=store)
        key = {
            "psig": parametric_signature(EXAMPLE8),
            "kind": "mws",
            "array": "X",
            "t": None,
        }
        store.put("parametric", key, {"schema": 1, "expr": "]]]"})
        clear_param_cache()
        store.drop_memory()
        pe = resolve_parametric(EXAMPLE8, "mws", array="X", store=store)
        assert pe is not None and pe.substitute((25, 10)) == 40


class TestWarmPath:
    def test_many_sizes_from_one_record_without_simulation(self, tmp_path):
        sizes = [(25, 10), (40, 20), (64, 32), (100, 7), (31, 57)]
        expected = {
            trips: max_window_size(with_trip_counts(EXAMPLE8, trips), "X")
            for trips in sizes
        }
        cold = ResultStore(tmp_path)
        assert (
            parametric_value(EXAMPLE8, "mws", array="X", store=cold)
            == expected[(25, 10)]
        )
        # Warm process: fresh in-memory state, same directory.
        clear_param_cache()
        warm = ResultStore(tmp_path)
        observer = obs.enable()
        try:
            for trips in sizes:
                member = with_trip_counts(EXAMPLE8, trips)
                assert (
                    parametric_value(member, "mws", array="X", store=warm)
                    == expected[trips]
                )
            assert observer.counters["param.subs_hits"] == len(sizes)
            assert "param.derived" not in observer.counters
            for name in SIMULATOR_COUNTERS:
                assert name not in observer.counters, name
        finally:
            obs.disable()

    def test_evaluate_exact_parametric_serves_from_family(self, tmp_path):
        from repro.transform.elementary import signed_permutations

        candidates = [None] + list(signed_permutations(2))
        truth = evaluate_exact(EXAMPLE8, candidates, array="X")
        clear_exact_cache()
        store = ResultStore(tmp_path)
        served = evaluate_exact(
            EXAMPLE8, candidates, array="X", store=store, parametric=True
        )
        assert served == truth
        # The served values are also persisted as plain exact records,
        # so non-parametric consumers of the store benefit too.
        sig = EXAMPLE8.signature()
        hits = sum(
            1
            for t in candidates
            if store.get(
                "exact",
                {
                    "sig": sig,
                    "array": "X",
                    "t": None if t is None else t.rows,
                },
            )
            is not None
        )
        assert hits == len(candidates)

    def test_evaluate_exact_parametric_counts_substitutions(self, tmp_path):
        observer = obs.enable()
        try:
            evaluate_exact(
                EXAMPLE8, [None], array="X",
                store=ResultStore(tmp_path), parametric=True,
            )
            assert observer.counters["param.subs_hits"] == 1
            assert observer.counters.get("search.cache.hits", 0) == 0
        finally:
            obs.disable()
