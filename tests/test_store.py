"""The bounded LRU, the persistent result store, and its search wiring.

Covers the ISSUE 5 tentpole guarantees: LRU eviction order + bounded
size under key churn (with the eviction counter), record roundtrips,
memory-vs-disk hit accounting, corruption tolerance (a truncated,
garbage, or wrong-schema record is a counted miss, never a crash), the
SearchResult codec (including Fraction estimates), and warm re-runs of
``evaluate_exact`` / ``search_mws_2d`` being served from the store with
identical results.
"""

from __future__ import annotations

import json
import pickle
from fractions import Fraction

import pytest

from repro import obs
from repro.ir import parse_program
from repro.store import (
    DEFAULT_LRU_CAPACITY,
    LRUCache,
    ResultStore,
    SCHEMA_VERSION,
    STORE_DIR_ENV,
    open_store,
)
from repro.transform.search import (
    SearchResult,
    _decode_result,
    _encode_result,
    clear_exact_cache,
    evaluate_exact,
    search_mws_2d,
)
from repro.linalg.matrix import IntMatrix

EXAMPLE = """
for i = 1 to 10 {
  for j = 1 to 10 {
    X[i + j] = X[i + j - 1] + X[i + j]
  }
}
"""


@pytest.fixture
def observer():
    observer = obs.enable()
    try:
        yield observer
    finally:
        obs.disable()


class TestLRUCache:
    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" becomes the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_put_existing_key_refreshes_without_evicting(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # update in place, "b" becomes LRU
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache
        assert len(cache) == 2

    def test_bounded_under_key_churn(self):
        cache = LRUCache(8)
        for k in range(1000):
            cache.put(k, k)
        assert len(cache) == 8
        assert cache.evictions == 992
        # The survivors are exactly the 8 most recent keys, oldest first.
        assert list(cache) == list(range(992, 1000))

    def test_eviction_counter_reported_to_obs(self, observer):
        cache = LRUCache(2, counter="test.lru")
        for k in range(5):
            cache.put(k, k)
        assert observer.counters["test.lru.evictions"] == 3
        assert cache.evictions == 3

    def test_clear_keeps_lifetime_eviction_count(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0
        assert cache.evictions == 1

    def test_get_miss_returns_default(self):
        cache = LRUCache(4)
        assert cache.get("nope") is None
        assert cache.get("nope", 7) == 7

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity must be >= 1"):
            LRUCache(0)


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = {"sig": "abc", "array": "X", "t": [[1, 0], [0, 1]]}
        store.put("exact", key, 42)
        assert store.get("exact", key) == 42
        assert store.record_count() == 1

    def test_key_dict_order_is_irrelevant(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("exact", {"a": 1, "b": 2}, "v")
        assert store.get("exact", {"b": 2, "a": 1}) == "v"
        assert store.record_count() == 1

    def test_mem_vs_disk_hits(self, tmp_path, observer):
        store = ResultStore(tmp_path)
        store.put("exact", {"k": 1}, 7)
        assert store.get("exact", {"k": 1}) == 7  # LRU front
        store.drop_memory()
        assert store.get("exact", {"k": 1}) == 7  # disk read
        assert store.get("exact", {"k": 1}) == 7  # back in the front
        assert observer.counters["store.mem.hits"] == 2
        assert observer.counters["store.disk.hits"] == 1
        assert observer.counters["store.writes"] == 1
        assert "store.misses" not in observer.counters

    def test_absent_record_is_a_counted_miss(self, tmp_path, observer):
        store = ResultStore(tmp_path)
        assert store.get("exact", {"k": "absent"}) is None
        assert observer.counters["store.misses"] == 1
        assert "store.corrupt" not in observer.counters

    @pytest.mark.parametrize(
        "corruption",
        [
            "",  # empty file
            '{"schema": 1, "kind": "exact", "key"',  # truncated JSON
            "not json at all \x00\xff",  # garbage
            '{"schema": 999, "kind": "exact", "key": {"k": 1}, "value": 7}',
            '{"schema": 1, "kind": "other", "key": {"k": 1}, "value": 7}',
            '{"schema": 1, "kind": "exact", "key": {"k": 2}, "value": 7}',
            '{"schema": 1, "kind": "exact", "key": {"k": 1}}',  # no value
            "[1, 2, 3]",  # not an object
        ],
        ids=[
            "empty", "truncated", "garbage", "wrong-schema", "wrong-kind",
            "wrong-key", "missing-value", "non-object",
        ],
    )
    def test_corrupt_record_degrades_to_miss(self, tmp_path, observer, corruption):
        store = ResultStore(tmp_path)
        key = {"k": 1}
        path = store.record_path("exact", key)
        path.parent.mkdir(parents=True)
        path.write_text(corruption, encoding="utf-8")
        assert store.get("exact", key) is None
        assert observer.counters["store.corrupt"] == 1
        assert observer.counters["store.misses"] == 1
        # The recompute's write heals the record.
        store.put("exact", key, 42)
        store.drop_memory()
        assert store.get("exact", key) == 42

    def test_records_are_schema_stamped(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put("exact", {"k": 1}, 7)
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["schema"] == SCHEMA_VERSION
        assert record["kind"] == "exact"
        assert record["key"] == {"k": 1}
        assert record["value"] == 7
        assert path.parent.parent == tmp_path / f"v{SCHEMA_VERSION}"

    def test_memory_front_is_bounded(self, tmp_path, observer):
        store = ResultStore(tmp_path, lru_capacity=4)
        for k in range(10):
            store.put("exact", {"k": k}, k)
        assert observer.counters["store.mem.evictions"] == 6
        # Evicted entries are still served from disk.
        assert store.get("exact", {"k": 0}) == 0
        assert observer.counters["store.disk.hits"] == 1

    def test_pickles_as_root_and_capacity(self, tmp_path):
        store = ResultStore(tmp_path, lru_capacity=9)
        store.put("exact", {"k": 1}, 7)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.root == store.root
        assert clone._lru.capacity == 9
        assert len(clone._lru) == 0  # fresh front in the worker
        assert clone.get("exact", {"k": 1}) == 7

    def test_open_store(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        assert open_store() is None
        assert open_store(tmp_path).root == tmp_path
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "env"))
        assert open_store().root == tmp_path / "env"

    def test_default_lru_capacity_env_override(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_LRU", raising=False)
        assert ResultStore(tmp_path)._lru.capacity == DEFAULT_LRU_CAPACITY
        monkeypatch.setenv("REPRO_STORE_LRU", "16")
        assert ResultStore(tmp_path)._lru.capacity == 16
        monkeypatch.setenv("REPRO_STORE_LRU", "zero")
        with pytest.raises(ValueError, match="REPRO_STORE_LRU"):
            ResultStore(tmp_path)


class TestSearchResultCodec:
    def test_roundtrip_with_fraction_estimate(self):
        result = SearchResult(
            "X", IntMatrix(((0, 1), (1, 0))), Fraction(7, 3), 11, 8, "2d-bound"
        )
        decoded = _decode_result(_encode_result(result))
        assert decoded == result
        assert isinstance(decoded.estimated_mws, Fraction)

    def test_roundtrip_through_store_json(self, tmp_path):
        result = SearchResult(
            "A", IntMatrix(((1, 0, 0), (0, 1, 0), (0, 0, 1))), 5, None, 48, "3d"
        )
        store = ResultStore(tmp_path)
        store.put("search", {"k": 1}, _encode_result(result))
        store.drop_memory()
        assert _decode_result(store.get("search", {"k": 1})) == result

    def test_undecodable_payload_is_counted_miss(self, observer):
        assert _decode_result({"array": "X"}) is None
        assert _decode_result(None) is None
        assert observer.counters["store.corrupt"] == 2


class TestSearchStoreWiring:
    def test_evaluate_exact_warm_run_hits_store(self, tmp_path, observer):
        program = parse_program(EXAMPLE)
        clear_exact_cache()
        cold = evaluate_exact(program, [None], array="X",
                              store=ResultStore(tmp_path))
        assert "store.writes" in observer.counters
        clear_exact_cache()  # drop in-process memo; only disk remains
        warm = evaluate_exact(program, [None], array="X",
                              store=ResultStore(tmp_path))
        assert warm == cold
        assert observer.counters["store.disk.hits"] >= 1

    def test_search_warm_run_matches_cold(self, tmp_path, observer):
        program = parse_program(EXAMPLE)
        store = ResultStore(tmp_path)
        clear_exact_cache()
        cold = search_mws_2d(program, "X", store=store)
        clear_exact_cache()
        warm = search_mws_2d(program, "X", store=ResultStore(tmp_path))
        assert warm == cold
        assert observer.counters["store.disk.hits"] >= 1

    def test_store_is_optional(self):
        program = parse_program(EXAMPLE)
        clear_exact_cache()
        no_store = search_mws_2d(program, "X")
        assert no_store.exact_mws is not None

    def test_search_memo_miss_counter(self, observer):
        program = parse_program(EXAMPLE)
        clear_exact_cache()
        search_mws_2d(program, "X")
        assert observer.counters["search.memo.misses"] >= 1
        misses = observer.counters["search.memo.misses"]
        search_mws_2d(program, "X")
        assert observer.counters["search.memo.hits"] >= 1
        assert observer.counters["search.memo.misses"] == misses
