"""Edge-case coverage for :mod:`repro.reporting.spans` and the
metrics-table renderers it composes (satellite d).

The span-summary table is printed after every ``--trace`` CLI run, so it
must render sensibly for empty observers, single spans, counters-only
summaries, and summaries carrying the new gauges/histograms sections.
"""

from __future__ import annotations

from repro.obs.metrics import Histogram
from repro.reporting import (
    SpanRow,
    render_gauges,
    render_histograms,
    render_metrics,
    render_span_summary,
    span_summary_rows,
)


def _span(count=1, total_s=1.0):
    return {
        "count": count,
        "total_s": total_s,
        "mean_s": total_s / count,
        "min_s": 0.0,
        "max_s": total_s,
    }


class TestSpanRows:
    def test_empty_summary_has_no_rows(self):
        assert span_summary_rows({"spans": {}, "counters": {}}) == []
        assert span_summary_rows({}) == []

    def test_name_and_depth_derive_from_path(self):
        row = SpanRow(path="search/evaluate/simulate", count=1, total_s=1.0, mean_s=1.0)
        assert row.name == "simulate"
        assert row.depth == 2
        root = SpanRow(path="search", count=1, total_s=1.0, mean_s=1.0)
        assert root.name == "search"
        assert root.depth == 0

    def test_rows_come_out_in_path_order(self):
        summary = {
            "spans": {
                "b": _span(),
                "a/child": _span(),
                "a": _span(),
            },
            "counters": {},
        }
        assert [r.path for r in span_summary_rows(summary)] == ["a", "a/child", "b"]


class TestRenderSpanSummary:
    def test_empty_input(self):
        assert render_span_summary({"spans": {}, "counters": {}}) == (
            "(no spans or counters recorded)"
        )

    def test_single_span(self):
        out = render_span_summary({"spans": {"solo": _span(2, 1.0)}, "counters": {}})
        lines = out.splitlines()
        assert lines[0].startswith("span")
        assert "solo" in lines[2]
        assert "2" in lines[2]
        assert "counter" not in out

    def test_counters_only(self):
        out = render_span_summary({"spans": {}, "counters": {"hits": 3}})
        assert out.splitlines()[0].startswith("counter")
        assert "hits" in out

    def test_children_indented_under_parents(self):
        out = render_span_summary(
            {"spans": {"a": _span(), "a/b": _span()}, "counters": {}}
        )
        lines = out.splitlines()
        assert lines[2].startswith("a ")
        assert lines[3].startswith("  b")

    def test_metrics_sections_appended(self):
        hist = Histogram(buckets=(1, 2))
        hist.observe_many([1, 2])
        out = render_span_summary(
            {
                "spans": {"a": _span()},
                "counters": {"hits": 1},
                "gauges": {"liveness.A.peak": 44.0},
                "histograms": {"occupancy": hist.as_dict()},
            }
        )
        assert "gauge" in out
        assert "liveness.A.peak" in out
        assert "44" in out
        assert "histogram" in out
        assert "occupancy" in out


class TestMetricsTables:
    def test_absent_sections_render_empty(self):
        assert render_gauges({}) == ""
        assert render_histograms({}) == ""
        assert render_metrics({"spans": {}, "counters": {}}) == ""

    def test_gauge_float_formatting(self):
        out = render_gauges({"gauges": {"whole": 44.0, "frac": 1.25}})
        assert "44" in out
        assert "44.000" not in out
        assert "1.250" in out

    def test_histogram_table_shows_count_sum_mean(self):
        hist = Histogram(buckets=(1, 2))
        hist.observe_many([1, 3])
        out = render_histograms({"histograms": {"h": hist.as_dict()}})
        assert "h" in out
        assert "2" in out  # count
        assert "4" in out  # sum

    def test_render_metrics_joins_sections(self):
        hist = Histogram(buckets=(1,))
        hist.observe(1)
        out = render_metrics(
            {
                "gauges": {"g": 1.0},
                "histograms": {"h": hist.as_dict()},
            }
        )
        assert "\n\n" in out
        assert out.index("g") < out.index("h")
