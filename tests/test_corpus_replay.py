"""Replay every checked-in corpus counterexample.

Each ``tests/corpus/*.json`` file is a shrunk witness of a bug that was
fixed (or a hand-minimized conformance pin); its oracle must pass on it
now.  A failure here means a previously fixed bug is back — the
assertion message carries the exact ``repro check --replay`` command.
"""

from pathlib import Path

import pytest

from repro.check import load_repro, replay_case

CORPUS = Path(__file__).parent / "corpus"
FILES = sorted(CORPUS.glob("*.json"))


def test_corpus_is_seeded():
    """The curated seeds must exist (see corpus/regenerate.py)."""
    assert len(FILES) >= 2
    assert any(f.name.startswith("estimate-brackets-exact--") for f in FILES), (
        "the PR-3 d==n offset-dedup witness is missing from tests/corpus"
    )


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.name)
def test_corpus_file_replays_green(path):
    case = load_repro(path)
    assert case.oracle, path
    assert case.detail, f"{path}: corpus entries must document their bug"
    violation = replay_case(case)
    assert violation is None, (
        f"regression: fixed bug is back.\n"
        f"oracle {case.oracle} fails again on {path.name}:\n"
        f"{violation.detail}\n"
        f"replay with: PYTHONPATH=src python -m repro check --replay {path}"
    )


@pytest.mark.parametrize("path", FILES, ids=lambda p: p.name)
def test_corpus_file_is_canonical(path):
    """Files round-trip byte-identically (sorted keys, no timestamps), so
    regeneration never churns the checked-in corpus."""
    import json

    from repro.check.runner import case_filename, load_repro

    data = json.loads(path.read_text())
    canonical = json.dumps(data, indent=2, sort_keys=True) + "\n"
    assert path.read_text() == canonical
    assert path.name == case_filename(load_repro(path))
