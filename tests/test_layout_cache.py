"""Tests for the layout extension and the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import ArrayDecl, parse_program
from repro.layout import (
    BlockedLayout,
    ColumnMajorLayout,
    RowMajorLayout,
    line_window_profile,
    max_line_window,
)
from repro.linalg import IntMatrix
from repro.memory import CacheConfig, allocate_arrays, simulate_cache
from repro.window import max_window_size


class TestLayouts:
    def test_row_major(self):
        decl = ArrayDecl.of("A", 4, 5)
        layout = RowMajorLayout()
        assert layout.address(decl, (0, 0)) == 0
        assert layout.address(decl, (0, 1)) == 1
        assert layout.address(decl, (1, 0)) == 5
        assert layout.strides(decl) == (5, 1)

    def test_column_major(self):
        decl = ArrayDecl.of("A", 4, 5)
        layout = ColumnMajorLayout()
        assert layout.address(decl, (1, 0)) == 1
        assert layout.address(decl, (0, 1)) == 4
        assert layout.strides(decl) == (1, 4)

    def test_origins_respected(self):
        decl = ArrayDecl.of("A", 4, origins=[-2])
        assert RowMajorLayout().address(decl, (-2,)) == 0
        assert RowMajorLayout().address(decl, (1,)) == 3

    def test_out_of_bounds(self):
        decl = ArrayDecl.of("A", 4, 5)
        with pytest.raises(IndexError):
            RowMajorLayout().address(decl, (4, 0))

    def test_rank_mismatch(self):
        decl = ArrayDecl.of("A", 4, 5)
        with pytest.raises(ValueError):
            RowMajorLayout().address(decl, (1,))

    def test_blocked_within_block(self):
        decl = ArrayDecl.of("A", 4, 4)
        layout = BlockedLayout((2, 2))
        # Block (0,0): elements (0,0),(0,1),(1,0),(1,1) -> addresses 0..3.
        assert [layout.address(decl, e) for e in [(0, 0), (0, 1), (1, 0), (1, 1)]] == [0, 1, 2, 3]
        # Next block along j.
        assert layout.address(decl, (0, 2)) == 4

    def test_blocked_rejects_bad_block(self):
        with pytest.raises(ValueError):
            BlockedLayout((0, 2))
        decl = ArrayDecl.of("A", 4, 4)
        with pytest.raises(ValueError):
            BlockedLayout((2,)).address(decl, (0, 0))

    @given(st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_layouts_are_bijections(self, b1, b2):
        decl = ArrayDecl.of("A", 6, 5)
        for layout in (RowMajorLayout(), ColumnMajorLayout(), BlockedLayout((b1, b2))):
            addresses = {
                layout.address(decl, (i, j))
                for i in range(6)
                for j in range(5)
            }
            assert len(addresses) == 30
            assert min(addresses) >= 0


class TestLineWindow:
    PROG = """
    for i = 1 to 8 {
      for j = 1 to 8 {
        B[0] = A[i-1][j] + A[i][j]
      }
    }
    """

    def test_line_size_one_equals_element_window(self):
        prog = parse_program(self.PROG)
        assert max_line_window(prog, "A", line_size=1) == max_window_size(prog, "A")

    def test_lines_never_exceed_elements(self):
        prog = parse_program(self.PROG)
        for line_size in (2, 4, 8):
            assert max_line_window(prog, "A", line_size=line_size) <= max_window_size(
                prog, "A"
            )

    def test_row_vs_column_major(self):
        # Row traversal of a row-major array keeps few live lines; the
        # column-major layout spreads the same window over many lines.
        prog = parse_program(self.PROG)
        row = max_line_window(prog, "A", RowMajorLayout(), line_size=8)
        col = max_line_window(prog, "A", ColumnMajorLayout(), line_size=8)
        assert row <= col

    def test_layout_traversal_codesign(self):
        # Interchange shrinks the ELEMENT window (reuse becomes adjacent)
        # but under a row-major layout the column traversal touches many
        # lines; matching the layout to the traversal (column-major)
        # restores the small LINE window.  This is precisely the layout
        # interaction the paper lists as future work.
        prog = parse_program(self.PROG)
        t = IntMatrix([[0, 1], [1, 0]])
        elem_before = max_window_size(prog, "A")
        elem_after = max_window_size(prog, "A", t)
        assert elem_after < elem_before
        lines_row = max_line_window(prog, "A", RowMajorLayout(), 4, t)
        lines_col = max_line_window(prog, "A", ColumnMajorLayout(), 4, t)
        assert lines_col < lines_row

    def test_profile_consistency(self):
        prog = parse_program(self.PROG)
        profile = line_window_profile(prog, "A", line_size=4)
        assert profile.max_size == max_line_window(prog, "A", line_size=4)

    def test_bad_line_size(self):
        prog = parse_program(self.PROG)
        with pytest.raises(ValueError):
            max_line_window(prog, "A", line_size=0)

    def test_unknown_array(self):
        prog = parse_program(self.PROG)
        with pytest.raises(KeyError):
            max_line_window(prog, "Z")


class TestCacheSim:
    PROG = """
    for i = 1 to 12 {
      for j = 1 to 12 {
        B[0] = A[i-1][j] + A[i][j]
      }
    }
    """

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(total_lines=0)
        with pytest.raises(ValueError):
            CacheConfig(total_lines=7, associativity=4)
        cfg = CacheConfig(total_lines=8, line_size=4, associativity=2)
        assert cfg.n_sets == 4
        assert cfg.capacity_words == 32

    def test_allocation_packs(self):
        prog = parse_program(self.PROG)
        bases, _ = allocate_arrays(prog)
        sizes = {d.name: d.declared_size for d in prog.decls}
        names = list(bases)
        for first, second in zip(names, names[1:]):
            assert bases[second] == bases[first] + sizes[first]

    def test_conservation(self):
        prog = parse_program(self.PROG)
        stats = simulate_cache(prog, CacheConfig(total_lines=8, line_size=4))
        assert stats.hits + stats.misses == stats.accesses
        assert stats.accesses == prog.nest.total_iterations * 3

    def test_bigger_cache_fewer_misses(self):
        prog = parse_program(self.PROG)
        small = simulate_cache(prog, CacheConfig(total_lines=4, line_size=2, associativity=2))
        large = simulate_cache(prog, CacheConfig(total_lines=64, line_size=2, associativity=2))
        assert large.misses <= small.misses

    def test_transformation_reduces_misses(self):
        # Interchange turns the row-distant reuse into adjacent reuse: a
        # tiny cache stops thrashing.
        prog = parse_program(self.PROG)
        cfg = CacheConfig(total_lines=4, line_size=2, associativity=2)
        before = simulate_cache(prog, cfg)
        after = simulate_cache(prog, cfg, transformation=IntMatrix([[0, 1], [1, 0]]))
        assert after.misses < before.misses

    def test_huge_cache_compulsory_only(self):
        prog = parse_program(self.PROG)
        cfg = CacheConfig(total_lines=1024, line_size=1, associativity=1024)
        stats = simulate_cache(prog, cfg)
        from repro.estimation import exact_program_footprint

        touched = sum(exact_program_footprint(prog).values())
        assert stats.misses == touched
