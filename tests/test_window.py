"""Tests for the window model: simulator (reference vs fast), closed forms,
lifetimes — pinned to the paper's examples."""

import random

import pytest
from fractions import Fraction
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import NestBuilder, parse_program
from repro.linalg import IntMatrix, random_unimodular
from repro.window import (
    element_lifetimes,
    lifetime_stats,
    max_total_window,
    max_window_size,
    mws_2d_estimate,
    mws_2d_for_array,
    mws_3d_estimate,
    mws_3d_for_ref,
    window_profile,
)
from repro.window.simulator import (
    max_total_window_reference,
    max_window_size_reference,
    window_profile_reference,
)


EX7 = """
for i = 1 to 20 {
  for j = 1 to 30 {
    Y[0] = X[2*i - 3*j]
  }
}
"""

EX8 = """
for i = 1 to 25 {
  for j = 1 to 10 {
    X[2*i + 5*j + 1] = X[2*i + 5*j + 5]
  }
}
"""

EX10 = """
for i = 1 to 10 {
  for j = 1 to 20 {
    for k = 1 to 30 {
      B[0] = A[3*i + k][j + k]
    }
  }
}
"""


def random_programs():
    """Small random affine programs for fast-vs-reference equivalence."""

    def build(params):
        (n1, n2), rows, offsets = params
        builder = NestBuilder().loop("i", 1, n1).loop("j", 1, n2)
        for k, (row, off) in enumerate(zip(rows, offsets)):
            builder.use(f"S{k}", ("A", [list(row)], [off]))
        return builder.build()

    return st.tuples(
        st.tuples(st.integers(2, 6), st.integers(2, 6)),
        st.lists(
            st.tuples(st.integers(-3, 3), st.integers(-3, 3)),
            min_size=1,
            max_size=2,
        ),
        st.lists(st.integers(-3, 3), min_size=2, max_size=2),
    ).map(build)


class TestSimulatorPaperValues:
    def test_example7_original(self):
        prog = parse_program(EX7)
        assert max_window_size(prog, "X") == 86  # paper (Eisenbeis) ~ 89

    def test_example7_compound_gives_one(self):
        prog = parse_program(EX7)
        t = IntMatrix([[2, -3], [1, -1]])
        assert max_window_size(prog, "X", t) == 1

    def test_example7_interchange(self):
        prog = parse_program(EX7)
        t = IntMatrix([[0, 1], [1, 0]])
        assert max_window_size(prog, "X", t) == 37  # paper ~41

    def test_example8_original(self):
        prog = parse_program(EX8)
        assert max_window_size(prog, "X") == 44  # paper estimate 50

    def test_example8_transformed(self):
        prog = parse_program(EX8)
        t = IntMatrix([[2, 3], [1, 1]])
        assert max_window_size(prog, "X", t) == 21  # paper: actual 21

    def test_example10_original(self):
        prog = parse_program(EX10)
        assert max_window_size(prog, "A") == 540  # paper computes 540

    def test_example10_embedding(self):
        prog = parse_program(EX10)
        t = IntMatrix([[3, 0, 1], [0, 1, 1], [1, 0, 0]])
        assert max_window_size(prog, "A", t) == 1


class TestSimulatorSemantics:
    def test_single_use_elements_never_live(self):
        prog = parse_program("for i = 1 to 9 { A[i] = 1 }")
        assert max_window_size(prog, "A") == 0

    def test_consecutive_reuse_is_one(self):
        prog = parse_program("for i = 1 to 9 { B[0] = A[i] + A[i-1] }")
        # A[i] at t reused at t+1: exactly one element live at any time.
        assert max_window_size(prog, "A") == 1

    def test_profile_matches_max(self):
        prog = parse_program(EX8)
        profile = window_profile(prog, "X")
        assert profile.max_size == max_window_size(prog, "X")
        assert len(profile.sizes) == prog.nest.total_iterations
        assert profile.sizes[profile.argmax()] == profile.max_size

    def test_profile_nonnegative(self):
        prog = parse_program(EX7)
        assert all(s >= 0 for s in window_profile(prog, "X").sizes)

    def test_total_window_le_sum_of_maxima(self):
        prog = parse_program(
            "for i = 1 to 9 { B[0] = A[i] + A[i-1] + C[i] + C[i-2] }"
        )
        total = max_total_window(prog)
        per = (
            max_window_size(prog, "A")
            + max_window_size(prog, "C")
            + max_window_size(prog, "B")
        )
        assert total <= per
        assert total >= max(
            max_window_size(prog, "A"), max_window_size(prog, "C")
        )

    def test_lifetimes_bounds(self):
        prog = parse_program(EX8)
        lifetimes = element_lifetimes(prog, "X")
        total = prog.nest.total_iterations
        for first, last in lifetimes.values():
            assert 0 <= first <= last < total

    def test_unknown_array(self):
        prog = parse_program("for i = 1 to 4 { A[i] = 1 }")
        with pytest.raises(KeyError):
            max_window_size(prog, "Z")

    def test_non_unimodular_rejected(self):
        prog = parse_program("for i = 1 to 4 { for j = 1 to 4 { A[i][j] = 1 } }")
        with pytest.raises(ValueError):
            max_window_size(prog, "A", IntMatrix([[2, 0], [0, 1]]))


class TestFastEqualsReference:
    @given(random_programs())
    @settings(max_examples=60, deadline=None)
    def test_identity_order(self, prog):
        assert max_window_size(prog, "A") == max_window_size_reference(prog, "A")

    @given(random_programs(), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_transformed_order(self, prog, seed):
        t = random_unimodular(2, random.Random(seed), steps=6, max_mult=2)
        assert max_window_size(prog, "A", t) == max_window_size_reference(
            prog, "A", t
        )

    @given(random_programs())
    @settings(max_examples=40, deadline=None)
    def test_profile_equal(self, prog):
        fast = window_profile(prog, "A").sizes
        ref = window_profile_reference(prog, "A").sizes
        assert fast == ref

    @given(random_programs())
    @settings(max_examples=40, deadline=None)
    def test_total_equal(self, prog):
        assert max_total_window(prog) == max_total_window_reference(prog)


class TestClosedForms2D:
    def test_identity_example8(self):
        assert mws_2d_estimate(2, 5, 25, 10, 1, 0) == 50

    def test_optimal_example8(self):
        assert mws_2d_estimate(2, 5, 25, 10, 2, 3) == 22

    def test_example7_identity(self):
        assert mws_2d_estimate(2, -3, 20, 30, 1, 0) == 90  # paper ~89

    def test_example7_interchange(self):
        assert mws_2d_estimate(2, -3, 20, 30, 0, 1) == 40  # paper ~41

    def test_aligned_row_gives_one(self):
        assert mws_2d_estimate(2, -3, 20, 30, 2, -3) == 1

    def test_singular_row_rejected(self):
        with pytest.raises(ValueError):
            mws_2d_estimate(2, 5, 10, 10, 0, 0)

    def test_for_array_wrapper(self):
        prog = parse_program(EX8)
        assert mws_2d_for_array(prog, "X") == 50
        assert mws_2d_for_array(prog, "X", IntMatrix([[2, 3], [1, 1]])) == 22

    def test_for_array_requires_1d(self):
        prog = parse_program("for i = 1 to 4 { for j = 1 to 4 { A[i][j] = 1 } }")
        with pytest.raises(ValueError):
            mws_2d_for_array(prog, "A")

    @given(
        st.integers(1, 5), st.integers(-5, 5),
        st.integers(4, 14), st.integers(4, 14),
    )
    @settings(max_examples=60, deadline=None)
    def test_estimate_vs_exact_band(self, a1, a2, n1, n2):
        # Identity transformation: eq. (2) should track the simulator
        # within a small relative band (it is an upper-flavored estimate).
        if a2 == 0:
            return
        prog = (
            NestBuilder()
            .loop("i", 1, n1)
            .loop("j", 1, n2)
            .use("S1", ("A", [[a1, a2]], [0]))
            .build()
        )
        est = mws_2d_estimate(a1, a2, n1, n2, 1, 0)
        exact = max_window_size(prog, "A")
        # Eq. (2) is an upper-flavored estimate: it never undershoots the
        # exact window by more than the one-element in-flight convention.
        assert exact <= est + 1


class TestClosedForms3D:
    def test_paper_example10(self):
        assert mws_3d_estimate((1, 3, -3), (10, 20, 30)) == 541  # text: 540

    def test_negative_d2_branch(self):
        assert mws_3d_estimate((1, -3, 3), (10, 20, 30)) == 1 * 17 * 27 + 1

    def test_lex_normalization(self):
        assert mws_3d_estimate((-1, -3, 3), (10, 20, 30)) == mws_3d_estimate(
            (1, 3, -3), (10, 20, 30)
        )

    def test_reuse_outside_box_gives_one(self):
        assert mws_3d_estimate((1, 25, 0), (10, 20, 30)) == 1
        assert mws_3d_estimate((11, 0, 0), (10, 20, 30)) == 1

    def test_for_ref_wrapper(self):
        prog = parse_program(EX10)
        assert mws_3d_for_ref(prog.refs_to("A")[0], prog.nest) == 541

    def test_for_ref_injective(self):
        prog = parse_program(
            "for i = 1 to 3 { for j = 1 to 3 { for k = 1 to 3 { A[i][j][k] = 1 } } }"
        )
        assert mws_3d_for_ref(prog.refs_to("A")[0], prog.nest) == 1

    def test_estimate_brackets_exact(self):
        prog = parse_program(EX10)
        exact = max_window_size(prog, "A")
        est = mws_3d_for_ref(prog.refs_to("A")[0], prog.nest)
        assert exact <= est <= exact + 1


class TestLifetimeStats:
    def test_basic(self):
        prog = parse_program(EX8)
        stats = lifetime_stats(prog, "X")
        assert stats.touched_elements > 0
        assert stats.max_lifetime >= stats.mean_lifetime >= 0
        assert stats.reused_elements + stats.single_use_elements == stats.touched_elements

    def test_transformation_shrinks_lifetimes(self):
        prog = parse_program(EX7)
        before = lifetime_stats(prog, "X")
        after = lifetime_stats(prog, "X", IntMatrix([[2, -3], [1, -1]]))
        assert after.max_lifetime < before.max_lifetime
        # The compound transformation makes all reuses adjacent.
        assert after.max_lifetime <= before.max_lifetime // 10

    def test_unknown_array(self):
        prog = parse_program("for i = 1 to 4 { A[i] = 1 }")
        with pytest.raises(KeyError):
            lifetime_stats(prog, "Z")
