"""Setup shim so editable installs work without the `wheel` package.

The offline environment has setuptools but not wheel, so PEP 517 editable
installs fail; `pip install -e . --no-use-pep517 --no-build-isolation`
falls back to `setup.py develop`, which this file enables.  All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
